package kv

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCloseDuringConcurrentPuts is the server-drain regression: Close
// racing in-flight Puts must wait them out and convert late arrivals into
// clean ErrClosed errors — never panic core.Close's quiescence assertion —
// and every Put that returned nil before Close must survive reopen.
func TestCloseDuringConcurrentPuts(t *testing.T) {
	s, err := New(Options{ArenaSize: 128 << 20, ChunkSize: 1 << 16, Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	acked := make([]map[string]string, writers)
	start := make(chan struct{})
	var acks atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		acked[w] = map[string]string{}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; ; i++ {
				k := fmt.Sprintf("w%d-%d", w, i)
				v := fmt.Sprintf("v%d-%d", w, i)
				err := s.Put([]byte(k), []byte(v))
				if err == ErrClosed {
					return
				}
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				acked[w][k] = v
				acks.Add(1)
			}
		}(w)
	}
	close(start)
	// Let the writers get going, then close mid-flight.
	for acks.Load() < 100 {
		runtime.Gosched()
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	if err := s.Close(); err != ErrClosed {
		t.Fatalf("second Close: %v", err)
	}
	if err := s.Put([]byte("late"), []byte("x")); err != ErrClosed {
		t.Fatalf("Put after Close: %v", err)
	}
	if err := s.Delete([]byte("late")); err != ErrClosed {
		t.Fatalf("Delete after Close: %v", err)
	}
	if err := s.Compact(); err != ErrClosed {
		t.Fatalf("Compact after Close: %v", err)
	}
	if errs := s.PutBatch([][]byte{[]byte("k")}, [][]byte{[]byte("v")}); errs == nil || errs[0] != ErrClosed {
		t.Fatalf("PutBatch after Close: %v", errs)
	}

	// Reads remain valid on the closed store...
	for w := range acked {
		for k, v := range acked[w] {
			got, err := s.Get([]byte(k))
			if err != nil || string(got) != v {
				t.Fatalf("closed-store Get(%s) = %q, %v", k, got, err)
			}
		}
	}
	// ...and every acknowledged write survives the clean image.
	s2, err := Open(s.Snapshot(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for w := range acked {
		n += len(acked[w])
		for k, v := range acked[w] {
			got, err := s2.Get([]byte(k))
			if err != nil || string(got) != v {
				t.Fatalf("reopened Get(%s) = %q, %v", k, got, err)
			}
		}
	}
	if s2.Len() != n {
		t.Fatalf("reopened store has %d keys, acked %d", s2.Len(), n)
	}
}

func TestCheckpointReopens(t *testing.T) {
	s, err := New(Options{ArenaSize: 64 << 20, ChunkSize: 1 << 16, Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	imgs, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(); err != ErrClosed {
		t.Fatalf("second Checkpoint: %v", err)
	}
	s2, err := Open(imgs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 500 {
		t.Fatalf("reopened %d keys, want 500", s2.Len())
	}
}

func TestPutBatchBasic(t *testing.T) {
	s := newStore(t)
	keys := [][]byte{
		[]byte("a"), []byte("b"), nil, []byte("c"), []byte("a"),
	}
	vals := [][]byte{
		[]byte("1"), []byte("2"), []byte("x"), []byte("3"), []byte("1b"),
	}
	errs := s.PutBatch(keys, vals)
	if errs == nil {
		t.Fatal("expected a per-pair error slice (empty key at index 2)")
	}
	for i, e := range errs {
		switch i {
		case 2:
			if e != ErrEmptyKey {
				t.Fatalf("pair 2: %v", e)
			}
		default:
			if e != nil {
				t.Fatalf("pair %d: %v", i, e)
			}
		}
	}
	// Duplicate key within the batch: last write wins.
	for k, want := range map[string]string{"a": "1b", "b": "2", "c": "3"} {
		got, err := s.Get([]byte(k))
		if err != nil || string(got) != want {
			t.Fatalf("Get(%s) = %q, %v", k, got, err)
		}
	}
	st := s.Stats()
	if st.LiveKeys != 3 {
		t.Fatalf("LiveKeys = %d, want 3", st.LiveKeys)
	}
	if st.DeadRecords != 1 {
		t.Fatalf("DeadRecords = %d, want 1 (the shadowed duplicate)", st.DeadRecords)
	}
}

// TestPutBatchMatchesSequential cross-checks a batched load against the
// same pairs applied with individual Puts: equal contents, equal
// accounting, and strictly fewer persist fences on the batch side (the
// point of batching).
func TestPutBatchMatchesSequential(t *testing.T) {
	mk := func() *Store {
		s, err := New(Options{ArenaSize: 128 << 20, ChunkSize: 1 << 16, Shards: 8, Partitions: 2})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	const n = 256
	var keys, vals [][]byte
	for i := 0; i < n; i++ {
		keys = append(keys, []byte(fmt.Sprintf("key-%04d", i%200))) // some overwrites
		vals = append(vals, bytes.Repeat([]byte{byte(i)}, 1+i%40))
	}
	seq, bat := mk(), mk()
	base := seq.Stats().Persists
	for i := range keys {
		if err := seq.Put(keys[i], vals[i]); err != nil {
			t.Fatal(err)
		}
	}
	seqPersists := seq.Stats().Persists - base
	base = bat.Stats().Persists
	if errs := bat.PutBatch(keys, vals); errs != nil {
		t.Fatalf("PutBatch: %v", errs)
	}
	batPersists := bat.Stats().Persists - base

	if a, b := seq.Stats(), bat.Stats(); a.LiveKeys != b.LiveKeys || a.DeadRecords != b.DeadRecords {
		t.Fatalf("accounting diverged: sequential %+v batch %+v", a, b)
	}
	seq.Range(func(k, v []byte) bool {
		got, err := bat.Get(k)
		if err != nil || !bytes.Equal(got, v) {
			t.Fatalf("batch store Get(%s) = %q, %v; want %q", k, got, err, v)
		}
		return true
	})
	if batPersists >= seqPersists {
		t.Fatalf("batch path did not amortize persists: batch=%d sequential=%d", batPersists, seqPersists)
	}
	t.Logf("persists: sequential=%d batch=%d (%.1fx fewer)", seqPersists, batPersists, float64(seqPersists)/float64(batPersists))
}

// TestPutBatchDurable crash-tests the batch path: after PutBatch returns,
// a zero-eviction crash image must contain every pair.
func TestPutBatchDurable(t *testing.T) {
	s, err := New(Options{ArenaSize: 64 << 20, ChunkSize: 1 << 14, Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	var keys, vals [][]byte
	for i := 0; i < 300; i++ {
		keys = append(keys, []byte(fmt.Sprintf("d%03d", i)))
		vals = append(vals, bytes.Repeat([]byte{byte(i)}, 600)) // force chunk rollovers
	}
	if errs := s.PutBatch(keys, vals); errs != nil {
		t.Fatalf("PutBatch: %v", errs)
	}
	s2, err := Open(s.Snapshot(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		got, err := s2.Get(keys[i])
		if err != nil || !bytes.Equal(got, vals[i]) {
			t.Fatalf("crash-recovered Get(%s): %v", keys[i], err)
		}
	}
}

// TestPutBatchConcurrent races batches against individual writers and
// Close, under -race.
func TestPutBatchConcurrent(t *testing.T) {
	s, err := New(Options{ArenaSize: 128 << 20, ChunkSize: 1 << 16, Shards: 8, Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var keys, vals [][]byte
				for j := 0; j < 16; j++ {
					keys = append(keys, []byte(fmt.Sprintf("b%d-%d-%d", w, i, j)))
					vals = append(vals, []byte("v"))
				}
				for _, e := range s.PutBatch(keys, vals) {
					if e != nil && e != ErrClosed {
						t.Errorf("batch: %v", e)
					}
				}
			}
		}(w)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				if err := s.Put([]byte(fmt.Sprintf("p%d-%d", w, i)), []byte("v")); err != nil && err != ErrClosed {
					t.Errorf("put: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
