package kv

import (
	"fmt"
	"sync/atomic"
	"testing"

	"rntree/internal/pmem"
)

func benchStore(b *testing.B) *Store {
	b.Helper()
	s, err := New(Options{ArenaSize: 512 << 20, FlushLatency: pmem.DefaultLatency})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkPut(b *testing.B) {
	s := benchStore(b)
	val := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%09d", i)), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	s := benchStore(b)
	const n = 100_000
	keys := make([][]byte, n)
	for i := 0; i < n; i++ {
		keys[i] = []byte(fmt.Sprintf("key-%09d", i))
		if err := s.Put(keys[i], []byte("value")); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(keys[i%n]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPutParallel exercises the sharded write path: concurrent Puts
// on different shards overlap their record persists. Compare against
// BenchmarkPutParallelSingleLog, which pins the store to one shard (the
// pre-sharding global-writer-lock design).
func BenchmarkPutParallel(b *testing.B)          { benchPutParallel(b, 0) }
func BenchmarkPutParallelSingleLog(b *testing.B) { benchPutParallel(b, 1) }

func benchPutParallel(b *testing.B, shards int) {
	s, err := New(Options{ArenaSize: 512 << 20, Shards: shards, FlushLatency: pmem.DefaultLatency})
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 100)
	var seq atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := seq.Add(1)
			if err := s.Put([]byte(fmt.Sprintf("key-%09d", i)), val); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkOverwrite(b *testing.B) {
	s := benchStore(b)
	const n = 1000
	for i := 0; i < n; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte("v")); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%04d", i%n)), []byte("vv")); err != nil {
			b.Fatal(err)
		}
	}
}
