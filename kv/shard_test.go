package kv

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rntree/internal/pmem"
)

// collide makes every key hash into one of n buckets, forcing deep hash
// chains (and, transitively, shard contention) deterministically.
func collide(n uint64) func([]byte) uint64 {
	return func(key []byte) uint64 { return Hash(key) % n }
}

// TestLiveKeysAfterReinsert is the regression test for the accounting bug
// where Put over a tombstoned key did not re-increment the live counter,
// so LiveKeys undercounted after every delete→reinsert.
func TestLiveKeysAfterReinsert(t *testing.T) {
	s := newStore(t)
	if err := s.Put([]byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().LiveKeys; got != 1 {
		t.Fatalf("LiveKeys after insert = %d, want 1", got)
	}
	if err := s.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().LiveKeys; got != 0 {
		t.Fatalf("LiveKeys after delete = %d, want 0", got)
	}
	if err := s.Put([]byte("k"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().LiveKeys; got != 1 {
		t.Fatalf("LiveKeys after reinsert = %d, want 1", got)
	}
	// Several delete→reinsert cycles must not drift.
	for i := 0; i < 10; i++ {
		if err := s.Delete([]byte("k")); err != nil {
			t.Fatal(err)
		}
		if err := s.Put([]byte("k"), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := s.Stats().LiveKeys, s.Len(); got != want || got != 1 {
		t.Fatalf("LiveKeys after churn = %d, Len = %d, want 1", got, want)
	}
}

// TestAccountingWithCollidingKeys is the regression test for head-based
// accounting: when a hash chain holds several distinct keys, the record a
// mutation shadows is the mutated key's newest record — not the chain head,
// which may belong to a colliding key. The seed code counted the head,
// undercounting LiveKeys and overcounting DeadRecords on every collision.
func TestAccountingWithCollidingKeys(t *testing.T) {
	s := newStore(t)
	s.hash = collide(3) // every key lands in one of three chains
	records := 0        // every successful Put/Delete appends exactly one

	const n = 12
	for i := 0; i < n; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
		records++
	}
	st := s.Stats()
	if st.LiveKeys != n || st.DeadRecords != 0 {
		t.Fatalf("after colliding inserts: live=%d dead=%d, want live=%d dead=0", st.LiveKeys, st.DeadRecords, n)
	}

	// Overwrite half: each kills exactly the overwritten key's record.
	for i := 0; i < n; i += 2 {
		if err := s.Put([]byte(fmt.Sprintf("key-%d", i)), []byte("v2")); err != nil {
			t.Fatal(err)
		}
		records++
	}
	st = s.Stats()
	if st.LiveKeys != n || st.DeadRecords != n/2 {
		t.Fatalf("after overwrites: live=%d dead=%d, want live=%d dead=%d", st.LiveKeys, st.DeadRecords, n, n/2)
	}

	// Delete keys whose newest record is buried mid-chain: exactly the
	// buried Put plus the new tombstone die.
	for i := 1; i < n; i += 2 {
		if err := s.Delete([]byte(fmt.Sprintf("key-%d", i))); err != nil {
			t.Fatal(err)
		}
		records++
	}
	st = s.Stats()
	if st.LiveKeys != n/2 {
		t.Fatalf("after deletes: live=%d, want %d", st.LiveKeys, n/2)
	}
	if st.LiveKeys != s.Len() {
		t.Fatalf("LiveKeys=%d disagrees with Len=%d", st.LiveKeys, s.Len())
	}
	// Invariant: every appended record is either live or dead.
	if st.LiveKeys+st.DeadRecords != records {
		t.Fatalf("live(%d)+dead(%d) != records appended(%d)", st.LiveKeys, st.DeadRecords, records)
	}

	// Reinsert over tombstones in colliding chains.
	for i := 1; i < n; i += 2 {
		if err := s.Put([]byte(fmt.Sprintf("key-%d", i)), []byte("back")); err != nil {
			t.Fatal(err)
		}
		records++
	}
	st = s.Stats()
	if st.LiveKeys != n || st.LiveKeys != s.Len() {
		t.Fatalf("after reinserts: live=%d Len=%d, want %d", st.LiveKeys, s.Len(), n)
	}
	if st.LiveKeys+st.DeadRecords != records {
		t.Fatalf("live(%d)+dead(%d) != records appended(%d)", st.LiveKeys, st.DeadRecords, records)
	}

	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.LiveKeys != n || st.DeadRecords != 0 {
		t.Fatalf("after compact: live=%d dead=%d, want live=%d dead=0", st.LiveKeys, st.DeadRecords, n)
	}
	for i := 0; i < n; i++ {
		if _, err := s.Get([]byte(fmt.Sprintf("key-%d", i))); err != nil {
			t.Fatalf("key-%d lost: %v", i, err)
		}
	}
}

// TestOpenUsesPersistedChunkSize is the regression test for the recovery
// bug where Open trusted Options.ChunkSize when walking chunk chains: a
// smaller value computed a too-small allocator bump, and fresh chunks were
// handed out overlapping live log data. v2 persists the geometry, so the
// value passed to Open must not matter.
func TestOpenUsesPersistedChunkSize(t *testing.T) {
	s, err := New(Options{ArenaSize: 128 << 20, ChunkSize: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]byte{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 400; i++ {
		k := fmt.Sprintf("old-%04d", i)
		v := make([]byte, 200+rng.Intn(800))
		rng.Read(v)
		want[k] = v
		if err := s.Put([]byte(k), v); err != nil {
			t.Fatal(err)
		}
	}
	img := s.Snapshot()

	// Open with a chunk size 8x smaller than the store was created with.
	s2, err := Open(img, Options{ChunkSize: 1 << 13})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.parts[0].chunkSz; got != 1<<16 {
		t.Fatalf("recovered chunk size = %d, want %d (persisted)", got, 1<<16)
	}
	// Write enough fresh data that a mis-positioned allocator would hand
	// out offsets inside the old chunks and corrupt them.
	for i := 0; i < 2000; i++ {
		v := make([]byte, 500)
		rng.Read(v)
		if err := s2.Put([]byte(fmt.Sprintf("new-%05d", i)), v); err != nil {
			t.Fatal(err)
		}
	}
	for k, v := range want {
		got, err := s2.Get([]byte(k))
		if err != nil || !bytes.Equal(got, v) {
			t.Fatalf("old record %q corrupted after open with wrong ChunkSize (err %v)", k, err)
		}
	}

	// A larger-than-created value must be harmless too.
	s3, err := Open(img, Options{ChunkSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range want {
		got, err := s3.Get([]byte(k))
		if err != nil || !bytes.Equal(got, v) {
			t.Fatalf("old record %q lost after open with larger ChunkSize (err %v)", k, err)
		}
	}
}

// TestStatsRaceWithWriters is the regression test for Stats() reading the
// accounting counters without synchronization: under -race the seed code
// reports a data race between Stats and any writer.
func TestStatsRaceWithWriters(t *testing.T) {
	s := newStore(t)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := []byte(fmt.Sprintf("k%d", i%64))
			if i%5 == 4 {
				_ = s.Delete(k)
			} else if err := s.Put(k, []byte("v")); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 3000; i++ {
		st := s.Stats()
		if st.LiveKeys < 0 || st.DeadRecords < 0 {
			t.Errorf("negative counters: %+v", st)
			break
		}
	}
	close(stop)
	wg.Wait()
}

// TestConcurrentStress drives concurrent Put/Get/Delete/Stats (plus
// periodic Compact and Range) across every shard; run with -race it is the
// acceptance stress for the sharded write path.
func TestConcurrentStress(t *testing.T) {
	s, err := New(Options{ArenaSize: 256 << 20, ChunkSize: 1 << 16, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 4
		keys    = 256
	)
	deadline := time.Now().Add(1 * time.Second)
	var wg sync.WaitGroup
	var ops atomic.Int64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for time.Now().Before(deadline) {
				k := []byte(fmt.Sprintf("k%d", rng.Intn(keys)))
				switch rng.Intn(10) {
				case 0:
					_ = s.Delete(k)
				case 1:
					_, _ = s.Get(k)
				case 2:
					_ = s.Has(k)
				default:
					if err := s.Put(k, []byte(fmt.Sprintf("w%d", w))); err != nil {
						t.Error(err)
						return
					}
				}
				ops.Add(1)
			}
		}(w)
	}
	// Dedicated readers: Stats and Range concurrently with the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			st := s.Stats()
			if st.LiveKeys < 0 || st.LiveKeys > keys {
				t.Errorf("implausible LiveKeys %d", st.LiveKeys)
				return
			}
			s.Range(func(k, v []byte) bool { return len(k) > 0 })
		}
	}()
	// Occasional compaction; per-shard locking means it runs alongside the
	// writers rather than stopping the world.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			if err := s.Compact(); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(50 * time.Millisecond)
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	if n := ops.Load(); n == 0 {
		t.Fatal("stress made no progress")
	}
	// Quiesced: the atomics must agree with a full walk.
	if got, want := s.Stats().LiveKeys, s.Len(); got != want {
		t.Fatalf("post-stress LiveKeys=%d, Len=%d", got, want)
	}
}

// TestParallelWritersAllShards checks plain correctness of fully parallel
// writers: every write lands, nothing tears, accounting stays exact.
func TestParallelWritersAllShards(t *testing.T) {
	s, err := New(Options{ArenaSize: 256 << 20, ChunkSize: 1 << 16, Shards: 16})
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 8
		per     = 500
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := []byte(fmt.Sprintf("w%d-k%04d", w, i))
				if err := s.Put(k, []byte(fmt.Sprintf("v%d-%d", w, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := s.Len(); got != writers*per {
		t.Fatalf("Len = %d, want %d", got, writers*per)
	}
	if got := s.Stats().LiveKeys; got != writers*per {
		t.Fatalf("LiveKeys = %d, want %d", got, writers*per)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < per; i += 37 {
			k := fmt.Sprintf("w%d-k%04d", w, i)
			v, err := s.Get([]byte(k))
			if err != nil || string(v) != fmt.Sprintf("v%d-%d", w, i) {
				t.Fatalf("%s = %q, %v", k, v, err)
			}
		}
	}
	// And the parallel-written store survives a crash.
	s2, err := Open(s.Snapshot(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Len(); got != writers*per {
		t.Fatalf("recovered Len = %d, want %d", got, writers*per)
	}
}

// makeV1Image rewrites a single-shard store's superblock into the legacy
// v1 format (magic v1, one chunk-chain head, no persisted geometry) and
// returns the crash image — a faithful pre-sharding snapshot.
func makeV1Image(t *testing.T, s *Store) []uint64 {
	t.Helper()
	if err := s.DowngradeV1(); err != nil {
		t.Fatal(err)
	}
	return s.Arenas()[0].CrashImage(nil, 0)
}

// TestV1ImageMigration: opening a legacy v1 image must migrate it all the
// way to the current sharded, partitioned v4 format without losing a byte,
// and the migrated image must be a normal v4 store from then on.
func TestV1ImageMigration(t *testing.T) {
	s, err := New(Options{ArenaSize: 64 << 20, ChunkSize: 1 << 14, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	for i := 0; i < 500; i++ {
		k, v := fmt.Sprintf("k%03d", i%200), fmt.Sprintf("v%d", i)
		if err := s.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	for i := 0; i < 200; i += 3 {
		k := fmt.Sprintf("k%03d", i)
		if err := s.Delete([]byte(k)); err != nil {
			t.Fatal(err)
		}
		delete(want, k)
	}
	img := makeV1Image(t, s)

	s2, err := Open([][]uint64{img}, Options{ChunkSize: 1 << 14, Shards: 8})
	if err != nil {
		t.Fatalf("v1 open: %v", err)
	}
	p := &s2.parts[0]
	if got := p.arena.Read8(p.sbOff + sbMagicOff); got != storeMagicV4 {
		t.Fatalf("migrated magic = %#x, want v4", got)
	}
	if got := p.arena.Read8(p.sbOff + sbLegacyOff); got != pmem.NullOff {
		t.Fatal("legacy chain not cleared after migration")
	}
	if len(p.shards) != 8 {
		t.Fatalf("migrated shard count = %d, want 8", len(p.shards))
	}
	check := func(s *Store, tag string) {
		t.Helper()
		got := map[string]string{}
		s.Range(func(k, v []byte) bool { got[string(k)] = string(v); return true })
		if !strMapsEqual(got, want) {
			t.Fatalf("%s: got %d keys, want %d", tag, len(got), len(want))
		}
	}
	check(s2, "after migration")
	if got := s2.Stats().LiveKeys; got != len(want) {
		t.Fatalf("migrated LiveKeys = %d, want %d", got, len(want))
	}

	// The migrated store is a normal v3 store: it takes writes, compacts
	// per shard, and round-trips through another crash.
	if err := s2.Put([]byte("post-migration"), []byte("yes")); err != nil {
		t.Fatal(err)
	}
	want["post-migration"] = "yes"
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	check(s2, "after migration+compact")
	s3, err := Open(s2.Snapshot(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	check(s3, "after migration+crash")
}

// TestMigrationCrashMatrix crashes the v1→v2 migration at every persist
// boundary (sampled) and verifies that reopening the crash image always
// yields exactly the pre-migration contents — before the root flip the
// image is still v1, after it the v2 legacy slot lets recovery finish the
// job, and no window in between may lose or corrupt data.
func TestMigrationCrashMatrix(t *testing.T) {
	s, err := New(Options{ArenaSize: 16 << 20, ChunkSize: 1 << 13, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	for i := 0; i < 120; i++ {
		k, v := fmt.Sprintf("k%02d", i%40), fmt.Sprintf("v%d", i)
		if err := s.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	for i := 0; i < 40; i += 4 {
		k := fmt.Sprintf("k%02d", i)
		if err := s.Delete([]byte(k)); err != nil {
			t.Fatal(err)
		}
		delete(want, k)
	}
	img := makeV1Image(t, s)
	opts := Options{ChunkSize: 1 << 13, Shards: 4}

	// Count the persists a clean migration performs.
	total := 0
	{
		a := pmem.Recover(img, pmem.Config{})
		a.SetHooks(&pmem.Hooks{AfterPersist: func(_, _ uint64) { total++ }})
		if _, err := OpenArenas([]*pmem.Arena{a}, opts); err != nil {
			t.Fatal(err)
		}
	}
	if total == 0 {
		t.Fatal("migration performed no persists")
	}

	rng := rand.New(rand.NewSource(99))
	for k := 0; k < total; k += 1 + rng.Intn(4) {
		a := pmem.Recover(img, pmem.Config{})
		var crash []uint64
		n := 0
		a.SetHooks(&pmem.Hooks{BeforePersist: func(_, _ uint64) {
			if n == k {
				// Half the samples also evict random dirty lines.
				if k%2 == 0 {
					crash = a.CrashImage(nil, 0)
				} else {
					crash = a.CrashImage(rng, 0.5)
				}
			}
			n++
		}})
		if _, err := OpenArenas([]*pmem.Arena{a}, opts); err != nil {
			t.Fatalf("crash point %d: clean open failed: %v", k, err)
		}
		if crash == nil {
			t.Fatalf("crash point %d never reached (total %d)", k, total)
		}
		s2, err := Open([][]uint64{crash}, opts)
		if err != nil {
			t.Fatalf("crash point %d: reopen: %v", k, err)
		}
		got := map[string]string{}
		s2.Range(func(k, v []byte) bool { got[string(k)] = string(v); return true })
		if !strMapsEqual(got, want) {
			t.Fatalf("crash point %d/%d: recovered %d keys, want %d", k, total, len(got), len(want))
		}
		if err := s2.Put([]byte("post"), []byte("crash")); err != nil {
			t.Fatalf("crash point %d: post-crash put: %v", k, err)
		}
	}
}
