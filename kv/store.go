// Package kv is a durable key-value store for byte-string keys and values
// built on RNTree — the downstream use case the paper motivates in §3.3
// (primary-key stores with unique-constraint semantics, à la Redis or a
// PostgreSQL index).
//
// Values live in a log-structured region of the same simulated NVM arena as
// the tree: a Put appends an immutable record (header, key, value) to the
// current log chunk, persists it, and then updates the RNTree index from
// the key's 63-bit hash to the record's offset — so the record is durable
// before it becomes reachable, and the tree's slot-array flush is the
// commit point, giving Put/Delete the same durable-linearizability story as
// the tree itself. Hash collisions are handled with per-hash record chains
// that store full keys.
//
// Space from overwritten and deleted records is reclaimed by Compact, which
// rewrites live records into fresh chunks (Bitcask-style) and retires the
// old ones.
package kv

import (
	"bytes"
	"errors"
	"fmt"
	"sync"

	"rntree/internal/core"
	"rntree/internal/pmem"
)

// Store errors.
var (
	// ErrNotFound is returned by Get and Delete for absent keys.
	ErrNotFound = errors.New("kv: key not found")
	// ErrTooLarge is returned when a record exceeds the chunk size.
	ErrTooLarge = errors.New("kv: record larger than log chunk")
	// ErrEmptyKey is returned for zero-length keys.
	ErrEmptyKey = errors.New("kv: empty key")
)

const (
	// rootStoreOff is the word of the arena root line (reserved by the
	// tree for layers above it) holding the store superblock offset.
	rootStoreOff = 40

	storeMagic = 0x524e_4b56_0001 // "RNKV" v1

	// superblock layout (one line)
	sbMagicOff = 0
	sbChunkOff = 8 // head of the chunk chain

	// chunk header (one line); records start at chunkHdrSize
	chunkNextOff = 0
	chunkHdrSize = pmem.LineSize

	// DefaultChunkSize is the log chunk size.
	DefaultChunkSize = 1 << 20

	// record header word: kind | keyLen<<8 | valLen<<32 ; second word: next
	// record in the hash chain (0 = end).
	recHdrSize = 16
	recPut     = 1
	recDelete  = 2
)

// Options configure a Store.
type Options struct {
	// ArenaSize is the simulated NVM capacity (default 512 MiB).
	ArenaSize uint64
	// ChunkSize is the value-log chunk size (default 1 MiB).
	ChunkSize uint64
	// DualSlotArray enables the RNTree+DS index variant (recommended for
	// read-heavy stores).
	DualSlotArray bool
	// FlushLatency/FenceLatency set the simulated persist cost.
	FlushLatency pmem.LatencyModel
}

func (o *Options) normalize() {
	if o.ArenaSize == 0 {
		o.ArenaSize = 512 << 20
	}
	if o.ChunkSize == 0 {
		o.ChunkSize = DefaultChunkSize
	}
	o.ChunkSize = (o.ChunkSize + pmem.LineSize - 1) &^ uint64(pmem.LineSize-1)
}

// Store is a durable key-value store. Reads may run concurrently with one
// writer; writes are serialized internally.
type Store struct {
	arena *pmem.Arena
	tree  *core.Tree

	mu      sync.Mutex // guards the log head and all mutations
	sbOff   uint64
	chunk   uint64 // current chunk base
	used    uint64 // bytes used in the current chunk (volatile)
	chunkSz uint64

	liveRecords int // records reachable via the index (approximate live set)
	deadRecords int // overwritten/tombstone records awaiting Compact
}

// New creates an empty store on a fresh arena.
func New(opts Options) (*Store, error) {
	opts.normalize()
	arena := pmem.New(pmem.Config{Size: opts.ArenaSize, Latency: opts.FlushLatency})
	t, err := core.New(arena, core.Options{DualSlot: opts.DualSlotArray})
	if err != nil {
		return nil, err
	}
	s := &Store{arena: arena, tree: t, chunkSz: opts.ChunkSize}
	sb, err := arena.Alloc(pmem.LineSize)
	if err != nil {
		return nil, err
	}
	arena.Write8(sb+sbMagicOff, storeMagic)
	arena.Write8(sb+sbChunkOff, pmem.NullOff)
	arena.Persist(sb, pmem.LineSize)
	arena.Write8(rootStoreOff, sb)
	arena.Persist(rootStoreOff, 8)
	s.sbOff = sb
	if err := s.newChunk(); err != nil {
		return nil, err
	}
	return s, nil
}

// Snapshot captures the durable state (see rntree.Tree.Crash); the store
// must be quiescent.
func (s *Store) Snapshot() []uint64 {
	return s.arena.CrashImage(nil, 0)
}

// Open recovers a store from a snapshot: the tree index is rebuilt via
// crash recovery, the chunk chain is re-registered with the allocator, and
// appends continue in a fresh chunk (the tail of the pre-crash chunk is
// sacrificed, as in any bump-allocated log).
func Open(img []uint64, opts Options) (*Store, error) {
	opts.normalize()
	arena := pmem.Recover(img, pmem.Config{Latency: opts.FlushLatency})
	t, err := core.Open(arena, core.Options{DualSlot: opts.DualSlotArray})
	if err != nil {
		return nil, err
	}
	sb := arena.Read8(rootStoreOff)
	if sb == 0 || arena.Read8(sb+sbMagicOff) != storeMagic {
		return nil, fmt.Errorf("kv: arena does not contain a store superblock")
	}
	s := &Store{arena: arena, tree: t, sbOff: sb, chunkSz: opts.ChunkSize}
	// The tree's recovery reset the allocator to cover only tree state;
	// extend it past every log chunk.
	maxOff := arena.Bump()
	if sb+pmem.LineSize > maxOff {
		maxOff = sb + pmem.LineSize
	}
	for c := arena.Read8(sb + sbChunkOff); c != pmem.NullOff; c = arena.Read8(c + chunkNextOff) {
		if c+s.chunkSz > maxOff {
			maxOff = c + s.chunkSz
		}
	}
	arena.SetBump(maxOff)
	if err := s.newChunk(); err != nil {
		return nil, err
	}
	s.liveRecords = s.Len() // exact: walks chains, skipping tombstones
	return s, nil
}

// newChunk links a fresh log chunk at the head of the persistent chain.
// Caller holds mu (or is the constructor).
func (s *Store) newChunk() error {
	off, err := s.arena.Alloc(s.chunkSz)
	if err != nil {
		return err
	}
	s.arena.Write8(off+chunkNextOff, s.arena.Read8(s.sbOff+sbChunkOff))
	s.arena.Persist(off+chunkNextOff, 8)
	s.arena.Write8(s.sbOff+sbChunkOff, off)
	s.arena.Persist(s.sbOff+sbChunkOff, 8)
	s.chunk = off
	s.used = chunkHdrSize
	return nil
}

// Hash maps a key to its 63-bit index key (FNV-1a folded to 63 bits).
func Hash(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return h & (1<<63 - 1)
}

func recSize(keyLen, valLen int) uint64 {
	return uint64(recHdrSize) + (uint64(keyLen)+7)&^7 + (uint64(valLen)+7)&^7
}

// appendRecord writes one immutable record to the log and persists it.
// Caller holds mu. Returns the record offset.
func (s *Store) appendRecord(kind int, key, val []byte, next uint64) (uint64, error) {
	size := recSize(len(key), len(val))
	if size > s.chunkSz-chunkHdrSize {
		return 0, ErrTooLarge
	}
	if s.used+size > s.chunkSz {
		if err := s.newChunk(); err != nil {
			return 0, err
		}
	}
	off := s.chunk + s.used
	s.used += size
	hdr := uint64(kind) | uint64(len(key))<<8 | uint64(len(val))<<32
	s.arena.Write8(off, hdr)
	s.arena.Write8(off+8, next)
	writePadded(s.arena, off+recHdrSize, key)
	writePadded(s.arena, off+recHdrSize+(uint64(len(key))+7)&^7, val)
	s.arena.Persist(off, size)
	return off, nil
}

func writePadded(a *pmem.Arena, off uint64, b []byte) {
	n := (len(b) + 7) &^ 7
	if n == 0 {
		return
	}
	buf := make([]byte, n)
	copy(buf, b)
	a.WriteRange(off, buf)
}

// readRecord decodes the record at off.
func (s *Store) readRecord(off uint64) (kind int, key, val []byte, next uint64) {
	hdr := s.arena.Read8(off)
	kind = int(hdr & 0xff)
	keyLen := int(hdr >> 8 & 0xffffff)
	valLen := int(hdr >> 32)
	next = s.arena.Read8(off + 8)
	kp := (uint64(keyLen) + 7) &^ 7
	kb := make([]byte, kp)
	s.arena.ReadRange(off+recHdrSize, kp, kb)
	key = kb[:keyLen]
	vp := (uint64(valLen) + 7) &^ 7
	if vp > 0 {
		vb := make([]byte, vp)
		s.arena.ReadRange(off+recHdrSize+kp, vp, vb)
		val = vb[:valLen]
	}
	return kind, key, val, next
}

// lookup walks the hash chain for key. Returns the newest matching record.
func (s *Store) lookup(key []byte) (kind int, val []byte, ok bool) {
	h := Hash(key)
	off, found := s.tree.Find(h)
	if !found {
		return 0, nil, false
	}
	for off != 0 {
		k, rkey, rval, next := s.readRecord(off)
		if bytes.Equal(rkey, key) {
			return k, rval, true
		}
		off = next
	}
	return 0, nil, false
}

// Put stores key → value (insert or overwrite).
func (s *Store) Put(key, value []byte) error {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h := Hash(key)
	oldHead, existed := s.tree.Find(h)
	next := uint64(0)
	if existed {
		next = oldHead
	}
	off, err := s.appendRecord(recPut, key, value, next)
	if err != nil {
		return err
	}
	if err := s.tree.Upsert(h, off); err != nil {
		return err
	}
	if existed {
		s.deadRecords++ // the shadowed head (same key or longer chain walk)
	} else {
		s.liveRecords++
	}
	return nil
}

// Get returns the value stored under key.
func (s *Store) Get(key []byte) ([]byte, error) {
	kind, val, ok := s.lookup(key)
	if !ok || kind == recDelete {
		return nil, ErrNotFound
	}
	return val, nil
}

// Has reports whether key is present.
func (s *Store) Has(key []byte) bool {
	kind, _, ok := s.lookup(key)
	return ok && kind != recDelete
}

// Delete removes key (tombstone append; reclaimed by Compact).
func (s *Store) Delete(key []byte) error {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	kind, _, ok := s.lookup(key)
	if !ok || kind == recDelete {
		return ErrNotFound
	}
	h := Hash(key)
	oldHead, _ := s.tree.Find(h)
	off, err := s.appendRecord(recDelete, key, nil, oldHead)
	if err != nil {
		return err
	}
	if err := s.tree.Upsert(h, off); err != nil {
		return err
	}
	s.liveRecords--
	s.deadRecords += 2 // the tombstone and the record it shadows
	return nil
}

// Range calls fn for every live key/value pair (hash order — unordered
// with respect to the original keys). fn must not mutate the store.
func (s *Store) Range(fn func(key, value []byte) bool) {
	s.tree.Scan(0, 0, func(_, off uint64) bool {
		// Walk the chain newest-first, reporting the first (newest) record
		// per distinct key.
		seen := map[string]bool{}
		for off != 0 {
			kind, key, val, next := s.readRecord(off)
			if !seen[string(key)] {
				seen[string(key)] = true
				if kind == recPut {
					if !fn(key, val) {
						return false
					}
				}
			}
			off = next
		}
		return true
	})
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	n := 0
	s.Range(func(_, _ []byte) bool { n++; return true })
	return n
}

// Compact rewrites every live record into fresh chunks and frees the old
// ones, reclaiming space from overwritten values and tombstones.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Snapshot the old chain, then start a new one.
	oldHead := s.arena.Read8(s.sbOff + sbChunkOff)
	s.arena.Write8(s.sbOff+sbChunkOff, pmem.NullOff)
	s.arena.Persist(s.sbOff+sbChunkOff, 8)
	if err := s.newChunk(); err != nil {
		return err
	}
	// Re-append the newest live record of every hash chain and repoint the
	// index. Records for distinct keys colliding on one hash are preserved.
	type rec struct{ key, val []byte }
	var fail error
	s.tree.Scan(0, 0, func(hash, off uint64) bool {
		var live []rec
		seen := map[string]bool{}
		for off != 0 {
			kind, key, val, next := s.readRecord(off)
			if !seen[string(key)] {
				seen[string(key)] = true
				if kind == recPut {
					live = append(live, rec{key, val})
				}
			}
			off = next
		}
		if len(live) == 0 {
			if err := s.tree.Remove(hash); err != nil {
				fail = err
				return false
			}
			return true
		}
		next := uint64(0)
		for i := len(live) - 1; i >= 0; i-- {
			noff, err := s.appendRecord(recPut, live[i].key, live[i].val, next)
			if err != nil {
				fail = err
				return false
			}
			next = noff
		}
		if err := s.tree.Upsert(hash, next); err != nil {
			fail = err
			return false
		}
		return true
	})
	if fail != nil {
		return fail
	}
	// Free the old chunks (volatile free list; the persistent chain head
	// already excludes them).
	for c := oldHead; c != pmem.NullOff; {
		nxt := s.arena.Read8(c + chunkNextOff)
		s.arena.Free(c, s.chunkSz)
		c = nxt
	}
	s.deadRecords = 0
	s.liveRecords = s.Len()
	return nil
}

// Stats summarises the store.
type Stats struct {
	LiveKeys    int
	DeadRecords int
	Persists    uint64
	TreeLeaves  int
}

// Stats returns store counters.
func (s *Store) Stats() Stats {
	return Stats{
		LiveKeys:    s.liveRecords,
		DeadRecords: s.deadRecords,
		Persists:    s.arena.Stats().Persists,
		TreeLeaves:  s.tree.LeafCount(),
	}
}
