// Package kv is a durable key-value store for byte-string keys and values
// built on RNTree — the downstream use case the paper motivates in §3.3
// (primary-key stores with unique-constraint semantics, à la Redis or a
// PostgreSQL index).
//
// The index is a hash-partitioned forest of RNTrees (internal/forest): a
// key's 63-bit hash picks the partition, and each partition owns a private
// simulated-NVM arena holding both its tree and its slice of the value
// log. Values live in a log-structured region of the partition arena: a
// Put appends an immutable record (header, key, value) to a log chunk,
// persists it, and then updates that partition's RNTree from the key's
// hash to the record's offset — so the record is durable before it becomes
// reachable, and the tree's slot-array flush is the commit point, giving
// Put/Delete the same durable-linearizability story as the tree itself.
// Hash collisions are handled with per-hash record chains that store full
// keys.
//
// Within a partition the value log is sharded (Bitcask-style per-writer
// log heads): the partition superblock roots a persisted shard table whose
// entries each head an independent chunk chain with its own volatile
// append cursor and lock. The v3 superblock binds the value-log shards to
// their index partition — geometry, partition count and partition index
// are all persisted per arena — so recovery can rebuild every partition
// independently and verify a set of crash images really is one store.
// Reads are lock-free on every path.
//
// Space from overwritten and deleted records is reclaimed by Compact,
// which rewrites live records into fresh chunks and retires the old ones —
// one shard at a time, so compaction never stops the whole store.
package kv

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"rntree/internal/core"
	"rntree/internal/forest"
	"rntree/internal/pmem"
	"rntree/internal/tree"
)

// Store errors.
var (
	// ErrNotFound is returned by Get and Delete for absent keys.
	ErrNotFound = errors.New("kv: key not found")
	// ErrTooLarge is returned when a record exceeds the chunk size.
	ErrTooLarge = errors.New("kv: record larger than log chunk")
	// ErrEmptyKey is returned for zero-length keys.
	ErrEmptyKey = errors.New("kv: empty key")
	// ErrClosed is returned by mutating operations after Close: the store
	// has taken its clean-shutdown path and accepts no more writes.
	ErrClosed = errors.New("kv: store is closed")
	// ErrFull is returned when a mutation cannot allocate space — the
	// partition heap is exhausted and cannot grow further. It wraps the
	// underlying allocator or index error, is retry-safe (the failed
	// mutation was not applied, and retrying fails identically until space
	// is reclaimed by Delete+Compact), and never corrupts the store.
	ErrFull = errors.New("kv: store is full")
)

// mapFull tags allocation-exhaustion errors from the layers below with the
// store-level typed ErrFull, leaving other errors untouched.
func mapFull(err error) error {
	if errors.Is(err, pmem.ErrOutOfMemory) || errors.Is(err, tree.ErrFull) {
		return fmt.Errorf("%w: %w", ErrFull, err)
	}
	return err
}

const (
	// rootStoreOff is the word of the arena root line (reserved by the
	// tree for layers above it) holding the store superblock offset.
	rootStoreOff = 40

	// Superblock magics. v1 stored a single chunk-chain head and no
	// geometry; v2 persists the chunk size, the shard count and the shard
	// table; v3 additionally binds the arena to an index partition
	// (partition count + index), one superblock per partition arena; v4
	// grows the superblock to two lines, the second recording the
	// partition heap's segment geometry and the shard table's simulated
	// mapped address (the store's one absolute pointer, re-encoded by the
	// swizzle pass when an image is recovered at a different base).
	storeMagicV1 = 0x524e_4b56_0001 // "RNKV" v1
	storeMagicV2 = 0x524e_4b56_0002 // "RNKV" v2 (sharded value log)
	storeMagicV3 = 0x524e_4b56_0003 // "RNKV" v3 (partitioned forest)
	storeMagicV4 = 0x524e_4b56_0004 // "RNKV" v4 (growable heap + swizzling)

	// v2/v3 superblock layout (one line). v3 adds the last two words.
	sbMagicOff    = 0
	sbChunkSzOff  = 8  // persisted log chunk size
	sbShardsOff   = 16 // shard count per partition (power of two)
	sbTableOff    = 24 // offset of the shard table (one line per shard)
	sbLegacyOff   = 32 // head of a not-yet-migrated v1 chunk chain, or null
	sbLegacySzOff = 40 // chunk size of the legacy chain
	sbPartsOff    = 48 // v3: total partitions in the store
	sbPartIdxOff  = 56 // v3: this arena's partition index

	// v4 superblock second line: the heap record. The segment headers
	// (internal/pmem) stay authoritative — recovery reads geometry from
	// them before any kv code runs — so these words are a cross-check plus
	// the swizzle consumer's state. nsegs is refreshed on clean Close and
	// on every Open, so after a crash it may lag the heap's committed
	// count (never lead it). tableSim is sbTableOff's value re-encoded as
	// a simulated mapped address via pmem.SimAddr; Open resolves it with
	// FromSimAddr against the plain offset and rewrites it when the image
	// was recovered at a different base.
	sbHeapOff     = 64 // 1 = partition arena is heap-formatted, 0 = legacy
	sbSeg0SzOff   = 72 // heap segment-0 size in bytes
	sbGrowSzOff   = 80 // heap grow-segment size in bytes
	sbNsegsOff    = 88 // committed segments when the line was last written
	sbTableSimOff = 96 // shard table as a simulated mapped address

	// Superblock sizes: v1-v3 are one line, v4 is two.
	sbSizeV3 = pmem.LineSize
	sbSizeV4 = 2 * pmem.LineSize

	// v1 superblock layout.
	sbV1ChunkOff = 8 // head of the single chunk chain

	// chunk header (one line); records start at chunkHdrSize
	chunkNextOff = 0
	chunkHdrSize = pmem.LineSize

	// DefaultChunkSize is the log chunk size.
	DefaultChunkSize = 1 << 20

	// MaxShards bounds the persisted shard table (one line per shard).
	MaxShards = 64

	// record header word: kind | keyLen<<8 | valLen<<32 ; second word: next
	// record in the hash chain (0 = end); third word: the record's
	// per-partition log sequence number, assigned at commit. The LSN rides
	// the record itself so replication progress is recovered from the value
	// log — recount rebuilds each partition's counter from the max reachable
	// LSN, and a record whose tree publish did not survive the crash is
	// invisible, keeping the recovered watermark exactly at the durable
	// prefix.
	recHdrSize = 24
	recLSNOff  = 16
	recPut     = 1
	recDelete  = 2

	// rootReplOff is the root-line word (partition 0's arena) holding the
	// offset of the replication-state line, or null if the store never
	// participated in replication. The line's second word packs epoch<<8 |
	// role, so a promotion commits with a single atomic 8-byte persist.
	rootReplOff    = 56
	replMagic      = 0x524e_5250_0001 // "RNRP" v1
	replStMagicOff = 0
	replStWordOff  = 8
)

// Replication record kinds as shipped by the commit hook and accepted by
// ReplApply (the wire values of the kv-internal record kinds).
const (
	ReplPut    uint8 = recPut
	ReplDelete uint8 = recDelete
)

// Options configure a Store.
type Options struct {
	// ArenaSize is the total initial simulated NVM capacity in bytes
	// (default 512 MiB), split evenly across partitions. Heap-formatted
	// partitions grow past their share on demand (see GrowSize).
	ArenaSize uint64
	// GrowSize is the size of each segment a partition heap appends when
	// its committed space is exhausted (default: the partition's initial
	// arena size).
	GrowSize uint64
	// MaxSegments caps each partition at its initial size plus
	// (MaxSegments-1)*GrowSize bytes (default 8; 1 disables growth, making
	// exhaustion surface as ErrFull).
	MaxSegments int
	// ChunkSize is the value-log chunk size (default 1 MiB). Persisted in
	// the superblock at creation; Open always uses the persisted value, so
	// a mismatched ChunkSize can no longer corrupt the allocator. (The
	// only exception is opening a legacy v1 image, which never persisted
	// its geometry — there ChunkSize must match the creating store.)
	ChunkSize uint64
	// Shards is the number of value-log shards per partition (default:
	// GOMAXPROCS, floored at 8 because persist stalls are wall-clock and
	// overlap even when cores don't). Rounded up to a power of two, capped
	// at MaxShards. Persisted at creation; Open uses the persisted count.
	Shards int
	// Partitions hash-partitions the store into that many independent
	// index-partition + value-log pairs (power of two). On New, zero means
	// one partition. On Open, zero keeps the partition count persisted in
	// the image; a different non-zero count triggers a rebuild migration
	// into fresh arenas with the requested geometry.
	Partitions int
	// DualSlotArray enables the RNTree+DS index variant (recommended for
	// read-heavy stores).
	DualSlotArray bool
	// FlushLatency/FenceLatency set the simulated persist cost.
	FlushLatency pmem.LatencyModel
}

func (o *Options) normalize() {
	if o.ArenaSize == 0 {
		o.ArenaSize = 512 << 20
	}
	if o.ChunkSize == 0 {
		o.ChunkSize = DefaultChunkSize
	}
	o.ChunkSize = (o.ChunkSize + pmem.LineSize - 1) &^ uint64(pmem.LineSize-1)
	if o.Shards == 0 {
		o.Shards = runtime.GOMAXPROCS(0)
		if o.Shards < 8 {
			o.Shards = 8
		}
	}
	if o.Shards > MaxShards {
		o.Shards = MaxShards
	}
	for p := 1; ; p <<= 1 {
		if p >= o.Shards {
			o.Shards = p
			break
		}
	}
}

// forestOpts maps store options onto the index forest.
func (o Options) forestOpts(partitions int) forest.Options {
	return forest.Options{
		Partitions:  partitions,
		ArenaSize:   o.ArenaSize / uint64(partitions),
		GrowSize:    o.GrowSize,
		MaxSegments: o.MaxSegments,
		Latency:     o.FlushLatency,
		Tree:        core.Options{DualSlot: o.DualSlotArray},
	}
}

// shard is one independent slice of a partition's value log: a persisted
// chunk-chain head (one shard-table line), a volatile append cursor, and a
// lock that serializes only the writers that hash here.
type shard struct {
	mu     sync.Mutex
	tabOff uint64 // arena offset of this shard's table line (chain head word)
	chunk  uint64 // current chunk base
	used   uint64 // bytes used in the current chunk (volatile)

	// live/dead are this shard's slice of the space accounting, read
	// lock-free by Stats.
	live atomic.Int64 // keys whose newest record is a Put
	dead atomic.Int64 // overwritten/tombstone records awaiting Compact

	// retired holds chunks unlinked by the previous compaction of this
	// shard; they are freed at the start of the next one, giving lock-free
	// readers a full compaction cycle to drain before reuse.
	retired []uint64

	// batchEnts/batchKinds are putGroup's per-batch scratch, guarded by mu
	// and reused across batches so group commit stays allocation-free on
	// the hot path. Entries reference caller key slices only for the
	// duration of one putGroup call.
	batchEnts  []batchEntry
	batchKinds []batchKeyKind
}

// kvPart is one partition's slice of the store: the partition arena and
// tree (owned by the forest) plus this arena's value-log state.
type kvPart struct {
	arena *pmem.Arena
	tree  *core.Tree

	sbOff     uint64
	chunkSz   uint64
	shards    []shard
	shardMask uint64

	// lsn is the partition's log sequence counter: the highest LSN assigned
	// (primary) or applied (replica). Recovered from the max reachable
	// record LSN by recount. Assignment is atomic, so LSNs stay unique and
	// monotonic even for hook-less parallel writers on different shards.
	lsn atomic.Uint64

	// replMu serializes committed mutations of this partition while a
	// commit hook is installed, so the hook observes them in LSN order —
	// the property the replication shipper's cursor depends on. Lock order:
	// replMu before any shard mu. With no hook installed the field is never
	// locked and writers on different shards stay parallel.
	replMu sync.Mutex
}

// initShards builds the volatile shard state over a persisted shard table.
func (p *kvPart) initShards(chunkSz uint64, nShards int, table uint64) {
	p.chunkSz = chunkSz
	p.shards = make([]shard, nShards)
	p.shardMask = uint64(nShards - 1)
	for i := range p.shards {
		p.shards[i].tabOff = table + uint64(i)*pmem.LineSize
	}
}

func (p *kvPart) shardFor(h uint64) *shard { return &p.shards[h&p.shardMask] }

// Store is a durable key-value store. Reads are lock-free and may run
// concurrently with any number of writers; writers on different shards
// proceed in parallel, and Compact locks one shard at a time.
//
// The store's place in the repo-wide lock hierarchy, machine-checked by
// rnvet's lockorder pass (declared edges join the observed acquisition
// graph, so any code path that acquires against this order is a finding):
//
//rnvet:lockorder repl.Node.mu<kv.Store.closeMu<kv.kvPart.replMu<kv.shard.mu<core.leafMeta.vl
//rnvet:lockorder kv.Store.closeMu<kv.Store.replStMu<pmem.Heap.allocMu
type Store struct {
	f     *forest.Forest
	hash  func([]byte) uint64 // Hash, overridable by tests to force collisions
	parts []kvPart

	// closeMu is the quiesce gate: every mutating operation holds it for
	// read, Close holds it for write. Close therefore waits out all
	// in-flight writers before shutting the forest down, and any writer
	// arriving after the flag flips gets ErrClosed instead of racing the
	// shutdown (the regression this guards: core.Close panics if a write
	// is still in flight). Reads stay lock-free and remain valid after
	// Close — a closed store is a read-only snapshot.
	closeMu sync.RWMutex
	closed  atomic.Bool

	// hook is the installed commit hook (nil pointer = none); see
	// SetCommitHook.
	hook atomic.Pointer[CommitHook]

	// replStMu serializes SetReplState's read-modify-write of the
	// replication-state line.
	replStMu sync.Mutex
}

// CommitHook observes every committed local mutation: it is called with the
// partition, the record's LSN, its kind (ReplPut/ReplDelete) and the key and
// value bytes, after the mutation's commit point and before its caller
// regains control. The key/val slices are only valid for the duration of the
// call. Replicated applies (ReplApply) do NOT fire the hook — replication
// chains deeper than primary→replicas are not supported.
type CommitHook func(part int, lsn uint64, kind uint8, key, val []byte)

// SetCommitHook installs fn as the store's commit hook (nil uninstalls).
// While a hook is installed, mutations within one partition are serialized
// so the hook fires in LSN order — the replication shipper's contract — and
// Compact preserves each key's newest record even when it is a tombstone, so
// the value log remains a complete replication history for subscribers
// resuming from any LSN at or above the compaction floor. Install the hook
// before concurrent writers start; swapping it mid-traffic leaves records
// committed during the swap unobserved.
func (s *Store) SetCommitHook(fn CommitHook) {
	if fn == nil {
		s.hook.Store(nil)
		return
	}
	s.hook.Store(&fn)
}

func (s *Store) commitHook() CommitHook {
	if p := s.hook.Load(); p != nil {
		return *p
	}
	return nil
}

// partFor routes a hash to the partition owning it — necessarily the same
// partition the forest routes the index key to, so a record always lives
// in the arena of the tree that points at it.
func (s *Store) partFor(h uint64) *kvPart { return &s.parts[s.f.PartitionFor(h)] }

// New creates an empty store on fresh arenas (one per partition).
func New(opts Options) (*Store, error) {
	opts.normalize()
	partitions := opts.Partitions
	if partitions == 0 {
		partitions = 1
	}
	f, err := forest.New(opts.forestOpts(partitions))
	if err != nil {
		return nil, err
	}
	s := &Store{f: f, hash: Hash, parts: make([]kvPart, partitions)}
	for i := range s.parts {
		p := &s.parts[i]
		p.arena = f.Partition(i).Arena()
		p.tree = f.Partition(i).Tree()
		if err := s.initPart(p, i, opts); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// initPart formats partition i's kv state: shard table, v4 superblock,
// root pointer, and one fresh chunk per shard.
func (s *Store) initPart(p *kvPart, idx int, opts Options) error {
	a := p.arena
	sb, err := a.Alloc(sbSizeV4)
	if err != nil {
		return err
	}
	table, err := a.Alloc(uint64(opts.Shards) * pmem.LineSize)
	if err != nil {
		return err
	}
	p.sbOff = sb
	p.initShards(opts.ChunkSize, opts.Shards, table)
	for i := range p.shards {
		a.Write8(p.shards[i].tabOff, pmem.NullOff)
	}
	a.Persist(table, uint64(opts.Shards)*pmem.LineSize)
	a.Write8(sb+sbMagicOff, storeMagicV4)
	a.Write8(sb+sbChunkSzOff, opts.ChunkSize)
	a.Write8(sb+sbShardsOff, uint64(opts.Shards))
	a.Write8(sb+sbTableOff, table)
	a.Write8(sb+sbLegacyOff, pmem.NullOff)
	a.Write8(sb+sbLegacySzOff, 0)
	a.Write8(sb+sbPartsOff, uint64(len(s.parts)))
	a.Write8(sb+sbPartIdxOff, uint64(idx))
	p.writeHeapLine()
	a.Persist(sb, sbSizeV4)
	a.Write8(rootStoreOff, sb)
	a.Persist(rootStoreOff, 8)
	for i := range p.shards {
		if err := p.newShardChunk(&p.shards[i]); err != nil {
			return err
		}
	}
	return nil
}

// writeHeapLine fills (without persisting) the v4 superblock's heap record
// from the arena's current state. Callers persist the superblock line(s)
// themselves; refreshHeapLine is the persist-it-now variant used on clean
// shutdown and after recovery, when the heap may have grown or been
// remapped since the line was last written.
//
//pmem:volatile every caller persists the line: initPart/upgradeV4 persist the whole fresh superblock before the root flip, refreshHeapLine persists immediately
func (p *kvPart) writeHeapLine() {
	a := p.arena
	sb := p.sbOff
	heap := uint64(0)
	if a.HeapFormatted() {
		heap = 1
	}
	a.Write8(sb+sbHeapOff, heap)
	a.Write8(sb+sbSeg0SzOff, a.Seg0Size())
	a.Write8(sb+sbGrowSzOff, a.GrowSize())
	a.Write8(sb+sbNsegsOff, uint64(a.Segments()))
	a.Write8(sb+sbTableSimOff, a.SimAddr(a.Read8(sb+sbTableOff)))
}

func (p *kvPart) refreshHeapLine() {
	p.writeHeapLine()
	p.arena.Persist(p.sbOff+sbHeapOff, pmem.LineSize)
}

// Snapshot captures the durable state, one image per partition arena in
// partition order (see rntree.Tree.Crash); the store must be quiescent.
func (s *Store) Snapshot() [][]uint64 {
	return s.f.CrashImages(nil, 0)
}

// Arenas exposes the per-partition backing arenas so fault-injection
// harnesses can install persist hooks and synthesize crash images
// (internal/fault).
func (s *Store) Arenas() []*pmem.Arena {
	out := make([]*pmem.Arena, len(s.parts))
	for i := range s.parts {
		out[i] = s.parts[i].arena
	}
	return out
}

// Partitions returns the number of partitions.
func (s *Store) Partitions() int { return len(s.parts) }

// DowngradeV1 rewrites the superblock into the legacy v1 format — magic v1,
// a single chunk-chain head, no persisted geometry, no forest superblock —
// turning the arena into a faithful pre-sharding image. The next Open
// migrates it back up. It exists so migration crash-points can be exercised
// by the fault-injection explorer; the store must be single-partition,
// single-shard and quiescent, and must not be used again after the
// downgrade.
func (s *Store) DowngradeV1() error {
	if len(s.parts) != 1 {
		return fmt.Errorf("kv: DowngradeV1 needs a single-partition store (have %d)", len(s.parts))
	}
	p := &s.parts[0]
	if len(p.shards) != 1 {
		return fmt.Errorf("kv: DowngradeV1 needs a single-shard store (have %d)", len(p.shards))
	}
	p.arena.Write8(p.sbOff+sbMagicOff, storeMagicV1)
	p.arena.Write8(p.sbOff+sbV1ChunkOff, p.arena.Read8(p.shards[0].tabOff))
	p.arena.Persist(p.sbOff, pmem.LineSize)
	forest.Detach(p.arena)
	return nil
}

// DowngradeV3 rewrites every partition's superblock into the v3 format — a
// freshly allocated one-line superblock without the heap record, committed
// by the same root-word flip the upgrade uses — turning the image into a
// faithful pre-heap v3 store. The next Open migrates it back up to v4, so
// the upgrade's crash points can be exercised by the fault-injection
// explorer. The store must be quiescent and must not be used again after
// the downgrade.
func (s *Store) DowngradeV3() error {
	for i := range s.parts {
		p := &s.parts[i]
		a := p.arena
		if a.Read8(p.sbOff+sbMagicOff) != storeMagicV4 {
			return fmt.Errorf("kv: DowngradeV3 needs a v4 store (partition %d)", i)
		}
		sb3, err := a.Alloc(sbSizeV3)
		if err != nil {
			return err
		}
		for w := uint64(sbChunkSzOff); w < sbSizeV3; w += 8 {
			a.Write8(sb3+w, a.Read8(p.sbOff+w))
		}
		a.Write8(sb3+sbMagicOff, storeMagicV3)
		a.Persist(sb3, sbSizeV3)
		a.Write8(rootStoreOff, sb3)
		a.Persist(rootStoreOff, 8)
		a.Free(p.sbOff, sbSizeV4)
		p.sbOff = sb3
	}
	return nil
}

// newShardChunk links a fresh log chunk at the head of sh's persistent
// chain. The chunk's next pointer is persisted before the head references
// it, so a crash in between merely leaks the fresh chunk. Caller holds
// sh.mu (or the store is not yet published).
func (p *kvPart) newShardChunk(sh *shard) error {
	off, err := p.arena.Alloc(p.chunkSz)
	if err != nil {
		return mapFull(err)
	}
	p.arena.Write8(off+chunkNextOff, p.arena.Read8(sh.tabOff))
	p.arena.Persist(off+chunkNextOff, 8)
	p.arena.Write8(sh.tabOff, off)
	p.arena.Persist(sh.tabOff, 8)
	sh.chunk = off
	sh.used = chunkHdrSize
	return nil
}

// PartitionOf returns the index, in [0, Partitions()), of the partition
// that owns key. A key's partition never changes while the store is open,
// so callers that shard work by partition — like the server's group
// committer — preserve per-key ordering for free.
func (s *Store) PartitionOf(key []byte) int { return s.f.PartitionFor(s.hash(key)) }

// Hash maps a key to its 63-bit index key (FNV-1a folded to 63 bits).
func Hash(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return h & (1<<63 - 1)
}

func recSize(keyLen, valLen int) uint64 {
	return uint64(recHdrSize) + (uint64(keyLen)+7)&^7 + (uint64(valLen)+7)&^7
}

// appendRecord writes one immutable record to sh's log and persists it.
// Caller holds sh.mu (or the store is not yet published). Returns the
// record offset.
func (p *kvPart) appendRecord(sh *shard, kind int, lsn uint64, key, val []byte, next uint64) (uint64, error) {
	size := recSize(len(key), len(val))
	if size > p.chunkSz-chunkHdrSize {
		return 0, ErrTooLarge
	}
	if sh.used+size > p.chunkSz {
		if err := p.newShardChunk(sh); err != nil {
			return 0, err
		}
	}
	off := sh.chunk + sh.used
	sh.used += size
	hdr := uint64(kind) | uint64(len(key))<<8 | uint64(len(val))<<32
	// Records are laid down with streaming (write-through) stores: nothing
	// reads them until the tree points at them, and that pointer update
	// happens after the PersistStream fence — so the log append pays one
	// pass over the bytes instead of a store pass plus a flush copy.
	p.arena.Write8Stream(off, hdr)
	p.arena.Write8Stream(off+8, next)
	p.arena.Write8Stream(off+recLSNOff, lsn)
	streamPadded(p.arena, off+recHdrSize, key)
	streamPadded(p.arena, off+recHdrSize+(uint64(len(key))+7)&^7, val)
	p.arena.PersistStream(off, size)
	return off, nil
}

//pmem:volatile helper inside the record append; the caller fences the whole record span with one PersistStream
func streamPadded(a *pmem.Arena, off uint64, b []byte) {
	if len(b) == 0 {
		return
	}
	if len(b)%8 == 0 {
		// Already word-aligned: write straight from the caller's bytes. This
		// is the common case for block-sized values and skips a full copy.
		a.WriteStream(off, b)
		return
	}
	n := (len(b) + 7) &^ 7
	buf := make([]byte, n)
	copy(buf, b)
	a.WriteStream(off, buf)
}

// readRecord decodes the record at off.
func (p *kvPart) readRecord(off uint64) (kind int, key, val []byte, next uint64) {
	hdr := p.arena.Read8(off)
	kind = int(hdr & 0xff)
	keyLen := int(hdr >> 8 & 0xffffff)
	valLen := int(hdr >> 32)
	next = p.arena.Read8(off + 8)
	kp := (uint64(keyLen) + 7) &^ 7
	kb := make([]byte, kp)
	p.arena.ReadRange(off+recHdrSize, kp, kb)
	key = kb[:keyLen]
	vp := (uint64(valLen) + 7) &^ 7
	if vp > 0 {
		vb := make([]byte, vp)
		p.arena.ReadRange(off+recHdrSize+kp, vp, vb)
		val = vb[:valLen]
	}
	return kind, key, val, next
}

// readRecordMeta decodes kind, key and next of the record at off, skipping
// the value copy (chain walks for accounting don't need it).
func (p *kvPart) readRecordMeta(off uint64) (kind int, key []byte, next uint64) {
	hdr := p.arena.Read8(off)
	kind = int(hdr & 0xff)
	keyLen := int(hdr >> 8 & 0xffffff)
	next = p.arena.Read8(off + 8)
	kp := (uint64(keyLen) + 7) &^ 7
	kb := make([]byte, kp)
	p.arena.ReadRange(off+recHdrSize, kp, kb)
	return kind, kb[:keyLen], next
}

// readLSN reads the persisted LSN of the record at off.
func (p *kvPart) readLSN(off uint64) uint64 { return p.arena.Read8(off + recLSNOff) }

// chainFindKind walks a hash chain from head and returns the kind of the
// newest record for key, or 0 if the chain holds no record for it. This is
// how mutations count precisely: the newest record for the mutated key —
// not whatever happens to sit at the chain head, which may belong to a
// colliding key — is what a new append shadows.
func (p *kvPart) chainFindKind(head uint64, key []byte) int {
	for off := head; off != 0; {
		kind, rkey, next := p.readRecordMeta(off)
		if bytes.Equal(rkey, key) {
			return kind
		}
		off = next
	}
	return 0
}

// lookup walks the hash chain for key. Returns the newest matching record.
func (s *Store) lookup(key []byte) (kind int, val []byte, ok bool) {
	h := s.hash(key)
	p := s.partFor(h)
	off, found := p.tree.Find(h)
	if !found {
		return 0, nil, false
	}
	for off != 0 {
		k, rkey, rval, next := p.readRecord(off)
		if bytes.Equal(rkey, key) {
			return k, rval, true
		}
		off = next
	}
	return 0, nil, false
}

// Put stores key → value (insert or overwrite). Puts on different shards
// (and a fortiori different partitions) run in parallel.
func (s *Store) Put(key, value []byte) error {
	_, _, err := s.PutEx(key, value)
	return err
}

// PutEx is Put returning the partition index and the committed record's LSN
// — what a replicating server needs to wait for the replica's durable
// watermark to cover this exact write.
func (s *Store) PutEx(key, value []byte) (part int, lsn uint64, err error) {
	if len(key) == 0 {
		return 0, 0, ErrEmptyKey
	}
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed.Load() {
		return 0, 0, ErrClosed
	}
	h := s.hash(key)
	part = s.f.PartitionFor(h)
	p := &s.parts[part]
	hook := s.commitHook()
	if hook != nil {
		// Ship order must equal LSN order: hold the partition's replication
		// lock across assign→append→publish→hook (lock order: replMu, then
		// the shard mu below).
		p.replMu.Lock()
		defer p.replMu.Unlock()
	}
	sh := p.shardFor(h)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	oldHead, existed := p.tree.Find(h)
	next := uint64(0)
	prevKind := 0
	if existed {
		next = oldHead
		prevKind = p.chainFindKind(oldHead, key)
	}
	lsn = p.lsn.Add(1)
	off, err := p.appendRecord(sh, recPut, lsn, key, value, next)
	if err != nil {
		return 0, 0, err
	}
	if err := p.tree.Upsert(h, off); err != nil {
		// The record is durable but unreachable — leaked until the next
		// compaction; the mutation itself was not applied.
		return 0, 0, mapFull(err)
	}
	switch prevKind {
	case recPut:
		// Overwrite: the key's previous value record is now garbage.
		sh.dead.Add(1)
	case recDelete:
		// Reinsert over a tombstone: the key is live again; the tombstone
		// was already counted dead when Delete appended it.
		sh.live.Add(1)
	default:
		// Fresh key (the chain head, if any, belongs to a colliding key
		// and stays live).
		sh.live.Add(1)
	}
	if hook != nil {
		hook(part, lsn, ReplPut, key, value)
	}
	return part, lsn, nil
}

// Get returns the value stored under key. Lock-free.
func (s *Store) Get(key []byte) ([]byte, error) {
	kind, val, ok := s.lookup(key)
	if !ok || kind == recDelete {
		return nil, ErrNotFound
	}
	return val, nil
}

// Has reports whether key is present. Lock-free.
func (s *Store) Has(key []byte) bool {
	kind, _, ok := s.lookup(key)
	return ok && kind != recDelete
}

// Delete removes key (tombstone append; reclaimed by Compact). Deletes on
// different shards run in parallel.
func (s *Store) Delete(key []byte) error {
	_, _, err := s.DeleteEx(key)
	return err
}

// DeleteEx is Delete returning the partition index and the tombstone's LSN.
func (s *Store) DeleteEx(key []byte) (part int, lsn uint64, err error) {
	if len(key) == 0 {
		return 0, 0, ErrEmptyKey
	}
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed.Load() {
		return 0, 0, ErrClosed
	}
	h := s.hash(key)
	part = s.f.PartitionFor(h)
	p := &s.parts[part]
	hook := s.commitHook()
	if hook != nil {
		p.replMu.Lock()
		defer p.replMu.Unlock()
	}
	sh := p.shardFor(h)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	oldHead, existed := p.tree.Find(h)
	if !existed {
		return 0, 0, ErrNotFound
	}
	if k := p.chainFindKind(oldHead, key); k != recPut {
		return 0, 0, ErrNotFound
	}
	lsn = p.lsn.Add(1)
	off, err := p.appendRecord(sh, recDelete, lsn, key, nil, oldHead)
	if err != nil {
		return 0, 0, err
	}
	if err := p.tree.Upsert(h, off); err != nil {
		return 0, 0, mapFull(err)
	}
	sh.live.Add(-1)
	// Exactly two records die: the key's newest Put (located above — it
	// need not be the chain head, which may belong to a colliding key) and
	// the tombstone itself.
	sh.dead.Add(2)
	if hook != nil {
		hook(part, lsn, ReplDelete, key, nil)
	}
	return part, lsn, nil
}

// Range calls fn for every live key/value pair (hash order within each
// partition, partition by partition — unordered with respect to the
// original keys). fn must not mutate the store.
func (s *Store) Range(fn func(key, value []byte) bool) {
	for i := range s.parts {
		p := &s.parts[i]
		stopped := false
		p.tree.Scan(0, 0, func(_, off uint64) bool {
			// Walk the chain newest-first, reporting the first (newest)
			// record per distinct key.
			seen := map[string]bool{}
			for off != 0 {
				kind, key, val, next := p.readRecord(off)
				if !seen[string(key)] {
					seen[string(key)] = true
					if kind == recPut {
						if !fn(key, val) {
							stopped = true
							return false
						}
					}
				}
				off = next
			}
			return true
		})
		if stopped {
			return
		}
	}
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	n := 0
	s.Range(func(_, _ []byte) bool { n++; return true })
	return n
}

// Stats summarises the store.
type Stats struct {
	LiveKeys    int
	DeadRecords int
	Partitions  int
	Shards      int // total across partitions
	Persists    uint64
	TreeLeaves  int
}

// Stats returns store counters. Safe to call concurrently with writers:
// the per-shard counters are atomics rolled up here.
func (s *Store) Stats() Stats {
	var live, dead int64
	nShards := 0
	var persists uint64
	for i := range s.parts {
		p := &s.parts[i]
		for j := range p.shards {
			live += p.shards[j].live.Load()
			dead += p.shards[j].dead.Load()
		}
		nShards += len(p.shards)
		persists += p.arena.Stats().Persists
	}
	return Stats{
		LiveKeys:    int(live),
		DeadRecords: int(dead),
		Partitions:  len(s.parts),
		Shards:      nShards,
		Persists:    persists,
		TreeLeaves:  s.f.LeafCount(),
	}
}

// Close takes the clean-shutdown path: it waits out every in-flight
// mutation (Put/Delete/PutBatch/Compact), flips the store read-only, and
// closes the index forest (persisting transient bookkeeping and arming
// each partition's clean flag, so the next Open reconstructs instead of
// crash-recovering). Mutations that arrive during or after Close return
// ErrClosed; reads remain valid. A second Close returns ErrClosed.
func (s *Store) Close() error {
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	s.closed.Store(true)
	// The heap may have grown since the superblock's heap record was last
	// written; refresh it so a clean image carries the current segment
	// count and table address.
	for i := range s.parts {
		p := &s.parts[i]
		if p.arena.Read8(p.sbOff+sbMagicOff) == storeMagicV4 {
			p.refreshHeapLine()
		}
	}
	s.f.Close()
	return nil
}

// Checkpoint is Close plus a snapshot of the resulting durable state (one
// image per partition arena): the images reopen through Open's fast
// reconstruction path. This is what a server's graceful drain calls once
// all in-flight requests have completed.
func (s *Store) Checkpoint() ([][]uint64, error) {
	if err := s.Close(); err != nil {
		return nil, err
	}
	return s.Snapshot(), nil
}
