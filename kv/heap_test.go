package kv

import (
	"errors"
	"fmt"
	"testing"

	"rntree/internal/pmem"
)

// TestStoreGrowsPastInitialArena: a partition whose initial arena fills up
// must absorb further writes by appending heap segments instead of failing
// with ErrFull, and the grown image must reopen with everything intact.
func TestStoreGrowsPastInitialArena(t *testing.T) {
	opts := Options{
		ArenaSize:   1 << 17,
		GrowSize:    1 << 16,
		MaxSegments: 6,
		ChunkSize:   1 << 12,
		Shards:      1,
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	val := make([]byte, 400)
	want := map[string]string{}
	for i := 0; i < 600; i++ {
		k := fmt.Sprintf("grow-%04d", i)
		for j := range val {
			val[j] = byte(i + j)
		}
		if err := s.Put([]byte(k), val); err != nil {
			t.Fatalf("put %d failed on a growable store: %v", i, err)
		}
		want[k] = string(val)
	}
	a := s.parts[0].arena
	if a.Segments() < 2 {
		t.Fatalf("store absorbed %d bytes without growing (segments=%d); shrink the workload margin", 600*400, a.Segments())
	}
	if err := a.CheckHeap(); err != nil {
		t.Fatalf("heap inconsistent after growth: %v", err)
	}

	imgs, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(imgs, Options{})
	if err != nil {
		t.Fatalf("reopen of grown store: %v", err)
	}
	for k, v := range want {
		got, err := s2.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("key %q lost across grown-image reopen (err=%v)", k, err)
		}
	}
	p := &s2.parts[0]
	if rec, segs := p.arena.Read8(p.sbOff+sbNsegsOff), uint64(p.arena.Segments()); rec != segs {
		t.Fatalf("reopened superblock records %d segments, heap has %d", rec, segs)
	}
	// The reopened store keeps growing.
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("more-%04d", i)
		if err := s2.Put([]byte(k), val); err != nil {
			t.Fatalf("post-reopen put: %v", err)
		}
	}
}

// TestV3ImageUpgrade: a v3 image (no heap record) opens through the
// crash-atomic v3→v4 superblock migration — same data, v4 magic, heap
// record populated.
func TestV3ImageUpgrade(t *testing.T) {
	s, err := New(Options{ArenaSize: 8 << 20, ChunkSize: 1 << 14, Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	for i := 0; i < 300; i++ {
		k, v := fmt.Sprintf("k%03d", i), fmt.Sprintf("v%d", i)
		if err := s.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.DowngradeV3(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(s.Snapshot(), Options{})
	if err != nil {
		t.Fatalf("v3 open: %v", err)
	}
	for i := range s2.parts {
		p := &s2.parts[i]
		if got := p.arena.Read8(p.sbOff + sbMagicOff); got != storeMagicV4 {
			t.Fatalf("partition %d: upgraded magic = %#x, want v4", i, got)
		}
		if p.arena.HeapFormatted() != (p.arena.Read8(p.sbOff+sbHeapOff) == 1) {
			t.Fatalf("partition %d: heap record flag disagrees with arena", i)
		}
	}
	got := map[string]string{}
	s2.Range(func(k, v []byte) bool { got[string(k)] = string(v); return true })
	if !strMapsEqual(got, want) {
		t.Fatalf("after upgrade: got %d keys, want %d", len(got), len(want))
	}
	if err := s2.Put([]byte("post"), []byte("upgrade")); err != nil {
		t.Fatal(err)
	}
}

// TestSwizzledReopenAtDifferentBase: per-segment images reassembled at a
// different simulated mapping base must open cleanly — the superblock's
// absolute shard-table pointer resolves through the mid-swizzle previous
// base, is re-encoded against the new mapping, and the swizzle state is
// retired by the open.
func TestSwizzledReopenAtDifferentBase(t *testing.T) {
	opts := Options{
		ArenaSize:   1 << 17,
		GrowSize:    1 << 16,
		MaxSegments: 6,
		ChunkSize:   1 << 12,
		Shards:      1,
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	val := make([]byte, 400)
	want := map[string]string{}
	for i := 0; i < 600; i++ {
		k := fmt.Sprintf("swz-%04d", i)
		if err := s.Put([]byte(k), val); err != nil {
			t.Fatal(err)
		}
		want[k] = string(val)
	}
	if s.parts[0].arena.Segments() < 2 {
		t.Fatal("workload did not grow the heap; the swizzle test needs multiple segments")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segImgs := s.parts[0].arena.SnapshotSegments()
	// Shuffle the segment order; RecoverSegments reassembles by ordinal.
	for i, j := 0, len(segImgs)-1; i < j; i, j = i+1, j-1 {
		segImgs[i], segImgs[j] = segImgs[j], segImgs[i]
	}
	const newBase = 0x0000_6100_0000_0000
	h, err := pmem.RecoverSegments(segImgs, pmem.Config{SimBase: newBase})
	if err != nil {
		t.Fatal(err)
	}
	if !h.Swizzling() {
		t.Fatal("recovery at a new base did not enter the swizzling state")
	}
	s2, err := OpenArenas([]*pmem.Arena{h}, Options{})
	if err != nil {
		t.Fatalf("swizzled open: %v", err)
	}
	if h.Swizzling() {
		t.Fatal("open did not retire the swizzle state")
	}
	p := &s2.parts[0]
	table := h.Read8(p.sbOff + sbTableOff)
	if sim := h.Read8(p.sbOff + sbTableSimOff); sim != h.SimAddr(table) {
		t.Fatalf("table pointer not re-encoded: sb holds %#x, current mapping is %#x", sim, h.SimAddr(table))
	}
	if sim := h.Read8(p.sbOff + sbTableSimOff); sim < newBase {
		t.Fatalf("re-encoded table pointer %#x not under the new base %#x", sim, newBase)
	}
	got := map[string]string{}
	s2.Range(func(k, v []byte) bool { got[string(k)] = string(v); return true })
	if !strMapsEqual(got, want) {
		t.Fatalf("after swizzled reopen: got %d keys, want %d", len(got), len(want))
	}
	if err := s2.Put([]byte("post"), []byte("swizzle")); err != nil {
		t.Fatal(err)
	}
}

// TestPutBatchOOMRetrySafe: exhausting a non-growable partition mid-batch
// must surface per-pair typed ErrFull errors, keep every acknowledged pair
// readable, and leave both the heap and the index consistent under retry.
func TestPutBatchOOMRetrySafe(t *testing.T) {
	s, err := New(Options{
		ArenaSize:   1 << 16,
		MaxSegments: 1, // growth disabled: exhaustion must surface, not grow
		ChunkSize:   1 << 12,
		Shards:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	val := make([]byte, 512)
	want := map[string]string{}
	var failedKeys [][]byte
	for b := 0; b < 200 && failedKeys == nil; b++ {
		keys := make([][]byte, 16)
		vals := make([][]byte, 16)
		for i := range keys {
			keys[i] = []byte(fmt.Sprintf("b%03d-%02d", b, i))
			vals[i] = val
		}
		errs := s.PutBatch(keys, vals)
		if errs == nil {
			for i := range keys {
				want[string(keys[i])] = string(vals[i])
			}
			continue
		}
		for i, e := range errs {
			if e == nil {
				want[string(keys[i])] = string(vals[i])
				continue
			}
			if !errors.Is(e, ErrFull) {
				t.Fatalf("pair %d failed untyped: %v", i, e)
			}
			failedKeys = append(failedKeys, keys[i])
		}
	}
	if failedKeys == nil {
		t.Fatal("store never filled; enlarge the workload")
	}
	verify := func(tag string) {
		t.Helper()
		for k, v := range want {
			got, err := s.Get([]byte(k))
			if err != nil || string(got) != v {
				t.Fatalf("%s: acked key %q lost (err=%v)", tag, k, err)
			}
		}
		p := &s.parts[0]
		if err := p.tree.CheckInvariants(); err != nil {
			t.Fatalf("%s: index inconsistent: %v", tag, err)
		}
		if err := p.arena.CheckHeap(); err != nil {
			t.Fatalf("%s: heap inconsistent: %v", tag, err)
		}
	}
	verify("after mid-batch OOM")
	// Retrying the failed pairs is safe: each either commits (and is then
	// readable) or fails with the same typed error.
	for _, k := range failedKeys {
		if err := s.Put(k, val); err != nil {
			if !errors.Is(err, ErrFull) {
				t.Fatalf("retry of %q failed untyped: %v", k, err)
			}
		} else {
			want[string(k)] = string(val)
		}
	}
	verify("after retries")
	if _, err := s.Get([]byte("never-written")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("miss surfaced as %v, want ErrNotFound", err)
	}
}
