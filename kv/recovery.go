package kv

import (
	"fmt"

	"rntree/internal/core"
	"rntree/internal/pmem"
)

// Open recovers a store from a snapshot: the tree index is rebuilt via
// crash recovery, every shard's chunk chain is re-registered with the
// allocator, and appends continue in fresh chunks (the tails of the
// pre-crash chunks are sacrificed, as in any bump-allocated log).
//
// The log geometry — chunk size and shard count — is read from the
// persisted superblock, not from opts, so opening with different Options
// than the store was created with is safe. Legacy v1 images (which did not
// persist their geometry) are migrated to the v2 sharded format in place;
// for those, opts.ChunkSize must match the creating store.
func Open(img []uint64, opts Options) (*Store, error) {
	opts.normalize()
	arena := pmem.Recover(img, pmem.Config{Latency: opts.FlushLatency})
	return openArena(arena, opts)
}

// OpenArena is Open on an already-recovered arena: the caller keeps
// ownership of the arena, so persist hooks installed on it observe the
// recovery (and v1-migration) persists — the entry point the
// fault-injection explorer uses to crash *inside* recovery.
func OpenArena(arena *pmem.Arena, opts Options) (*Store, error) {
	opts.normalize()
	return openArena(arena, opts)
}

// openArena is Open after arena recovery; split out so crash tests can
// install persist hooks on the arena before recovery runs.
func openArena(arena *pmem.Arena, opts Options) (*Store, error) {
	t, err := core.Open(arena, core.Options{DualSlot: opts.DualSlotArray})
	if err != nil {
		return nil, err
	}
	sb := arena.Read8(rootStoreOff)
	if sb == pmem.NullOff {
		return nil, fmt.Errorf("kv: arena does not contain a store superblock")
	}
	switch arena.Read8(sb + sbMagicOff) {
	case storeMagicV2:
		return openV2(arena, t, sb)
	case storeMagicV1:
		return openV1(arena, t, sb, opts)
	default:
		return nil, fmt.Errorf("kv: arena does not contain a store superblock")
	}
}

// openV2 recovers a sharded store from its persisted superblock.
func openV2(arena *pmem.Arena, t *core.Tree, sb uint64) (*Store, error) {
	chunkSz := arena.Read8(sb + sbChunkSzOff)
	nShards := arena.Read8(sb + sbShardsOff)
	table := arena.Read8(sb + sbTableOff)
	if nShards == 0 || nShards > MaxShards || nShards&(nShards-1) != 0 {
		return nil, fmt.Errorf("kv: corrupt superblock: shard count %d", nShards)
	}
	if chunkSz < 2*pmem.LineSize || chunkSz%pmem.LineSize != 0 {
		return nil, fmt.Errorf("kv: corrupt superblock: chunk size %d", chunkSz)
	}
	if table == pmem.NullOff {
		return nil, fmt.Errorf("kv: corrupt superblock: null shard table")
	}
	s := newShardedStore(arena, t, sb, chunkSz, int(nShards), table)

	// The tree's recovery reset the allocator to cover only tree state;
	// extend it past the superblock, the shard table and every log chunk
	// of every chain (including a legacy chain mid-migration) so the
	// allocator cannot hand out offsets overlapping live log data.
	maxOff := arena.Bump()
	grow := func(end uint64) {
		if end > maxOff {
			maxOff = end
		}
	}
	grow(sb + pmem.LineSize)
	grow(table + nShards*pmem.LineSize)
	for i := range s.shards {
		for c := arena.Read8(s.shards[i].tabOff); c != pmem.NullOff; c = arena.Read8(c + chunkNextOff) {
			grow(c + chunkSz)
		}
	}
	legacy := arena.Read8(sb + sbLegacyOff)
	legacySz := arena.Read8(sb + sbLegacySzOff)
	if legacy != pmem.NullOff {
		for c := legacy; c != pmem.NullOff; c = arena.Read8(c + chunkNextOff) {
			grow(c + legacySz)
		}
	}
	arena.SetBump(maxOff)
	for i := range s.shards {
		if err := s.newShardChunk(&s.shards[i]); err != nil {
			return nil, err
		}
	}
	// A non-null legacy chain means a v1→v2 migration was interrupted by a
	// crash; finish it (idempotent) before the store is published.
	if legacy != pmem.NullOff {
		if err := s.finishMigration(legacy, legacySz); err != nil {
			return nil, err
		}
	}
	s.recount()
	return s, nil
}

// openV1 migrates a legacy single-chain store to the sharded v2 format: it
// builds a fresh v2 superblock whose legacy slot references the old chain,
// flips the root pointer (the commit point — before it the image is still
// v1, after it openV2 can always finish the job), then rewrites every
// record into its hash shard and frees the old chunks.
//
// v1 never persisted its geometry, so walking the old chain must trust
// opts.ChunkSize — the historical footgun the v2 format removes.
func openV1(arena *pmem.Arena, t *core.Tree, sb uint64, opts Options) (*Store, error) {
	chunkSz := opts.ChunkSize
	oldHead := arena.Read8(sb + sbV1ChunkOff)
	maxOff := arena.Bump()
	if sb+pmem.LineSize > maxOff {
		maxOff = sb + pmem.LineSize
	}
	for c := oldHead; c != pmem.NullOff; c = arena.Read8(c + chunkNextOff) {
		if c+chunkSz > maxOff {
			maxOff = c + chunkSz
		}
	}
	arena.SetBump(maxOff)

	sb2, err := arena.Alloc(pmem.LineSize)
	if err != nil {
		return nil, err
	}
	table, err := arena.Alloc(uint64(opts.Shards) * pmem.LineSize)
	if err != nil {
		return nil, err
	}
	s := newShardedStore(arena, t, sb2, chunkSz, opts.Shards, table)
	for i := range s.shards {
		arena.Write8(s.shards[i].tabOff, pmem.NullOff)
	}
	arena.Persist(table, uint64(opts.Shards)*pmem.LineSize)
	for i := range s.shards {
		if err := s.newShardChunk(&s.shards[i]); err != nil {
			return nil, err
		}
	}
	arena.Write8(sb2+sbMagicOff, storeMagicV2)
	arena.Write8(sb2+sbChunkSzOff, chunkSz)
	arena.Write8(sb2+sbShardsOff, uint64(opts.Shards))
	arena.Write8(sb2+sbTableOff, table)
	arena.Write8(sb2+sbLegacyOff, oldHead)
	arena.Write8(sb2+sbLegacySzOff, chunkSz)
	arena.Persist(sb2, pmem.LineSize)
	arena.Write8(rootStoreOff, sb2)
	arena.Persist(rootStoreOff, 8)

	if err := s.finishMigration(oldHead, chunkSz); err != nil {
		return nil, err
	}
	s.recount()
	return s, nil
}

// finishMigration rewrites every indexed record into its hash shard's
// chain, then unlinks and frees the legacy chunks. Runs single-threaded
// inside Open before the store is published. Crash-safe: records are
// persisted into (persistently linked) shard chunks before the index is
// repointed, and the legacy chain stays allocator-protected until the
// legacy slot is cleared; if a crash interrupts it, the next Open reruns
// it, and any re-appended duplicates are invisible behind the newest chain
// entries and reclaimed by the next Compact.
func (s *Store) finishMigration(legacyHead, legacySz uint64) error {
	var fail error
	s.tree.Scan(0, 0, func(hash, off uint64) bool {
		live := s.collectLive(off)
		if len(live) == 0 {
			if err := s.tree.Remove(hash); err != nil {
				fail = err
				return false
			}
			return true
		}
		if err := s.rewriteChain(s.shardFor(hash), hash, live); err != nil {
			fail = err
			return false
		}
		return true
	})
	if fail != nil {
		return fail
	}
	s.arena.Write8(s.sbOff+sbLegacyOff, pmem.NullOff)
	s.arena.Persist(s.sbOff+sbLegacyOff, 8)
	for c := legacyHead; c != pmem.NullOff; {
		nxt := s.arena.Read8(c + chunkNextOff)
		s.arena.Free(c, legacySz)
		c = nxt
	}
	return nil
}

// recount rebuilds the per-shard live counters exactly by walking every
// hash chain (dead records restart at zero after recovery; Compact
// re-derives them). Runs single-threaded inside Open.
func (s *Store) recount() {
	s.tree.Scan(0, 0, func(hash, off uint64) bool {
		n := 0
		seen := map[string]bool{}
		for off != 0 {
			kind, key, next := s.readRecordMeta(off)
			if !seen[string(key)] {
				seen[string(key)] = true
				if kind == recPut {
					n++
				}
			}
			off = next
		}
		if n > 0 {
			s.shardFor(hash).live.Add(int64(n))
		}
		return true
	})
}
