package kv

import (
	"fmt"

	"rntree/internal/core"
	"rntree/internal/forest"
	"rntree/internal/htm"
	"rntree/internal/pmem"
)

// Open recovers a store from a snapshot (one image per partition arena, in
// partition order): every partition's tree index is rebuilt via crash
// recovery, its shard chunk chains are re-registered with the allocator,
// and appends continue in fresh chunks (the tails of the pre-crash chunks
// are sacrificed, as in any bump-allocated log).
//
// The store geometry — chunk size, shard count, partition count — is read
// from the persisted superblocks, not from opts, so opening with different
// Options than the store was created with is safe. Legacy single-arena v1
// and v2 images are migrated to the v3 partitioned format in place; v1
// images (which did not persist their geometry) additionally need
// opts.ChunkSize to match the creating store. Setting opts.Partitions to a
// different count than the images hold rebuilds the store into fresh
// arenas with the requested geometry.
func Open(imgs [][]uint64, opts Options) (*Store, error) {
	opts.normalize()
	arenas := make([]*pmem.Arena, len(imgs))
	for i, img := range imgs {
		arenas[i] = pmem.Recover(img, pmem.Config{Latency: opts.FlushLatency})
	}
	return openArenas(arenas, opts)
}

// OpenArenas is Open on already-recovered arenas: the caller keeps
// ownership of the arenas, so persist hooks installed on them observe the
// recovery (and migration) persists — the entry point the fault-injection
// explorer uses to crash *inside* recovery.
func OpenArenas(arenas []*pmem.Arena, opts Options) (*Store, error) {
	opts.normalize()
	return openArenas(arenas, opts)
}

// openArenas dispatches on the image generation. A single arena whose
// superblock carries a v1/v2 magic takes the legacy upgrade path; anything
// else must be a partition-complete v3/v4 set.
func openArenas(arenas []*pmem.Arena, opts Options) (*Store, error) {
	if len(arenas) == 0 {
		return nil, fmt.Errorf("kv: no arenas to open")
	}
	var s *Store
	var err error
	if len(arenas) == 1 && legacyMagic(arenas[0]) {
		s, err = openLegacy(arenas[0], opts)
	} else {
		s, err = openPartitioned(arenas, opts)
	}
	if err != nil {
		return nil, err
	}
	// A partition count requested explicitly and differing from what the
	// images persist triggers a rebuild migration: a fresh store with the
	// requested geometry, filled by rehashing every live pair. The source
	// arenas are left untouched, so a crash mid-rebuild just means the next
	// Open starts it over.
	if opts.Partitions != 0 && opts.Partitions != len(s.parts) {
		return rebuild(s, opts)
	}
	return s, nil
}

// legacyMagic reports whether the arena's store superblock carries a
// pre-partitioning (v1/v2) magic.
func legacyMagic(a *pmem.Arena) bool {
	sb := a.Read8(rootStoreOff)
	if sb == pmem.NullOff {
		return false
	}
	m := a.Read8(sb + sbMagicOff)
	return m == storeMagicV1 || m == storeMagicV2
}

// openPartitioned recovers a partition-complete v3/v4 store: the forest
// layer verifies the arena set (count, order, per-partition forest
// superblocks), then each partition's value-log state is rebuilt
// independently from its own kv superblock. v3 partitions are upgraded to
// the v4 two-line superblock in place.
func openPartitioned(arenas []*pmem.Arena, opts Options) (*Store, error) {
	fopts := opts.forestOpts(len(arenas))
	f, err := forest.OpenArenas(arenas, fopts)
	if err != nil {
		return nil, err
	}
	s := &Store{f: f, hash: Hash, parts: make([]kvPart, len(arenas))}
	for i := range s.parts {
		p := &s.parts[i]
		p.arena = f.Partition(i).Arena()
		p.tree = f.Partition(i).Tree()
		if err := openPart(p, i, len(arenas)); err != nil {
			return nil, err
		}
		p.recount()
	}
	return s, nil
}

// openPart rebuilds one partition's value-log state from its persisted
// v3/v4 superblock and re-registers every log chunk with the allocator.
func openPart(p *kvPart, idx, parts int) error {
	a := p.arena
	sb := a.Read8(rootStoreOff)
	if sb == pmem.NullOff {
		return fmt.Errorf("kv: partition %d: arena does not contain a store superblock", idx)
	}
	magic := a.Read8(sb + sbMagicOff)
	if magic != storeMagicV3 && magic != storeMagicV4 {
		return fmt.Errorf("kv: partition %d: bad superblock magic %#x", idx, magic)
	}
	chunkSz := a.Read8(sb + sbChunkSzOff)
	nShards := a.Read8(sb + sbShardsOff)
	table := a.Read8(sb + sbTableOff)
	if nShards == 0 || nShards > MaxShards || nShards&(nShards-1) != 0 {
		return fmt.Errorf("kv: partition %d: corrupt superblock: shard count %d", idx, nShards)
	}
	if chunkSz < 2*pmem.LineSize || chunkSz%pmem.LineSize != 0 {
		return fmt.Errorf("kv: partition %d: corrupt superblock: chunk size %d", idx, chunkSz)
	}
	if table == pmem.NullOff {
		return fmt.Errorf("kv: partition %d: corrupt superblock: null shard table", idx)
	}
	if got := a.Read8(sb + sbPartsOff); got != uint64(parts) {
		return fmt.Errorf("kv: partition %d: superblock says %d partitions, opening %d", idx, got, parts)
	}
	if got := a.Read8(sb + sbPartIdxOff); got != uint64(idx) {
		return fmt.Errorf("kv: partition %d: arena belongs at position %d", idx, got)
	}
	p.sbOff = sb
	p.initShards(chunkSz, int(nShards), table)
	if magic == storeMagicV4 {
		if err := p.checkHeapRecord(idx); err != nil {
			return err
		}
	}

	// Recovery below the kv layer reset the allocator to cover only tree
	// and forest state; extend it past the superblock, the shard table and
	// every log chunk of every chain (including a legacy chain
	// mid-migration) so the allocator cannot hand out offsets overlapping
	// live log data.
	maxOff := a.Bump()
	grow := func(end uint64) {
		if end > maxOff {
			maxOff = end
		}
	}
	if magic == storeMagicV4 {
		grow(sb + sbSizeV4)
	} else {
		grow(sb + sbSizeV3)
	}
	grow(table + nShards*pmem.LineSize)
	for i := range p.shards {
		for c := a.Read8(p.shards[i].tabOff); c != pmem.NullOff; c = a.Read8(c + chunkNextOff) {
			grow(c + chunkSz)
		}
	}
	legacy := a.Read8(sb + sbLegacyOff)
	legacySz := a.Read8(sb + sbLegacySzOff)
	if legacy != pmem.NullOff {
		for c := legacy; c != pmem.NullOff; c = a.Read8(c + chunkNextOff) {
			grow(c + legacySz)
		}
	}
	// The replication-state line (epoch/role, kv/repl.go) is rooted in the
	// arena root line; keep the allocator clear of it too.
	if r := a.Read8(rootReplOff); r != pmem.NullOff {
		grow(r + pmem.LineSize)
	}
	a.SetBump(maxOff)
	for i := range p.shards {
		if err := p.newShardChunk(&p.shards[i]); err != nil {
			return err
		}
	}
	// A non-null legacy chain means a v1 migration was interrupted by a
	// crash after the upgrade committed; finish it (idempotent) before the
	// store is published.
	if legacy != pmem.NullOff {
		if err := p.finishMigration(legacy, legacySz); err != nil {
			return err
		}
	}
	if magic == storeMagicV3 {
		return p.upgradeV4()
	}
	// The heap record may be stale relative to the heap headers (growth
	// after the last clean Close, or a fresh remap); bring it current.
	p.refreshHeapLine()
	return nil
}

// checkHeapRecord validates a v4 superblock's heap record against the
// arena's authoritative segment headers, then resolves the shard table's
// absolute (simulated mapped) pointer. When the image was recovered at a
// different mapping base the partition arrives mid-swizzle: the stored
// address still resolves through the segment's previous base, gets
// re-encoded against the current one, and the swizzle state is retired —
// the store-level consumer of the pmem layer's position-independent
// recovery.
func (p *kvPart) checkHeapRecord(idx int) error {
	a := p.arena
	sb := p.sbOff
	heap := a.Read8(sb + sbHeapOff)
	if (heap == 1) != a.HeapFormatted() {
		return fmt.Errorf("kv: partition %d: superblock heap flag %d does not match arena (heap-formatted=%v)",
			idx, heap, a.HeapFormatted())
	}
	table := a.Read8(sb + sbTableOff)
	if heap == 1 {
		if err := a.CheckHeap(); err != nil {
			return fmt.Errorf("kv: partition %d: %w", idx, err)
		}
		if rec := a.Read8(sb + sbSeg0SzOff); rec != a.Seg0Size() {
			return fmt.Errorf("kv: partition %d: superblock records segment-0 size %d, heap has %d", idx, rec, a.Seg0Size())
		}
		if rec := a.Read8(sb + sbGrowSzOff); rec != a.GrowSize() {
			return fmt.Errorf("kv: partition %d: superblock records grow size %d, heap has %d", idx, rec, a.GrowSize())
		}
		// The heap can only have grown since the record was written (a
		// grow that crashed before its cutover is truncated by recovery).
		if rec := a.Read8(sb + sbNsegsOff); rec > uint64(a.Segments()) {
			return fmt.Errorf("kv: partition %d: superblock records %d segments, heap committed only %d", idx, rec, a.Segments())
		}
	}
	sim := a.Read8(sb + sbTableSimOff)
	off, ok := a.FromSimAddr(sim)
	if !ok || off != table {
		return fmt.Errorf("kv: partition %d: shard-table pointer %#x does not resolve to table offset %#x", idx, sim, table)
	}
	if cur := a.SimAddr(table); cur != sim {
		a.Write8(sb+sbTableSimOff, cur)
		a.Persist(sb+sbTableSimOff, 8)
	}
	a.FinishSwizzle()
	return nil
}

// upgradeV4 migrates a recovered v3 partition to the v4 two-line
// superblock, reusing the v1 migration's two-step commit: the new
// superblock is fully persisted first — v3 words copied, magic flipped to
// v4, heap record appended — and then a single root-word flip commits it.
// Before the flip the image still reopens as v3 and the upgrade reruns
// from scratch; after it the image is v4 and the old superblock line
// returns to the allocator (a crash between flip and free leaks that one
// line, the same bounded window every allocator handout has).
func (p *kvPart) upgradeV4() error {
	a := p.arena
	sb4, err := a.Alloc(sbSizeV4)
	if err != nil {
		return mapFull(err)
	}
	for w := uint64(sbChunkSzOff); w < sbSizeV3; w += 8 {
		a.Write8(sb4+w, a.Read8(p.sbOff+w))
	}
	a.Write8(sb4+sbMagicOff, storeMagicV4)
	old := p.sbOff
	p.sbOff = sb4
	p.writeHeapLine()
	a.Persist(sb4, sbSizeV4)
	a.Write8(rootStoreOff, sb4)
	a.Persist(rootStoreOff, 8)
	a.Free(old, sbSizeV3)
	return nil
}

// openLegacy recovers a pre-partitioning single-arena image and upgrades it
// to v3 in place. The arena has no forest superblock, so the tree is opened
// directly (with an explicitly owned HTM region, as the forest layer would)
// and the old v1/v2 machinery rebuilds the value log. The upgrade then runs
// in two persisted steps:
//
//  1. forest.Attach writes a single-partition forest superblock and flips
//     the forest root word. A crash after this leaves a v2 store with a
//     dangling forest superblock — harmless, since the v2 reopen path never
//     reads it and the next upgrade attempt overwrites the root word.
//  2. The kv superblock gains its partition words and the magic flips to
//     v3, all within one line persist — the commit point. Before it the
//     image reopens as v2 and the upgrade reruns; after it the image is a
//     complete one-partition v3 set, and the chained v3→v4 step (its own
//     root-flip commit, see upgradeV4) finishes the job.
func openLegacy(arena *pmem.Arena, opts Options) (*Store, error) {
	region := htm.NewRegion(arena, htm.Config{})
	t, err := core.Open(arena, core.Options{DualSlot: opts.DualSlotArray, Region: region})
	if err != nil {
		return nil, err
	}
	sb := arena.Read8(rootStoreOff)
	// The partition is built in place in its final slice slot: kvPart holds
	// atomics and a mutex, so it must never be copied.
	parts := make([]kvPart, 1)
	p := &parts[0]
	p.arena, p.tree = arena, t
	switch arena.Read8(sb + sbMagicOff) {
	case storeMagicV2:
		err = openV2(p, sb)
	case storeMagicV1:
		err = openV1(p, sb, opts)
	default:
		err = fmt.Errorf("kv: arena does not contain a store superblock")
	}
	if err != nil {
		return nil, err
	}
	f, err := forest.Attach(arena, region, t)
	if err != nil {
		return nil, err
	}
	arena.Write8(p.sbOff+sbPartsOff, 1)
	arena.Write8(p.sbOff+sbPartIdxOff, 0)
	arena.Write8(p.sbOff+sbMagicOff, storeMagicV3)
	arena.Persist(p.sbOff, pmem.LineSize)
	// Chain the v3→v4 step onto the legacy upgrade so every open lands on
	// the current format.
	if err := p.upgradeV4(); err != nil {
		return nil, err
	}
	p.recount()
	return &Store{f: f, hash: Hash, parts: parts}, nil
}

// openV2 recovers a sharded single-arena store from its persisted v2
// superblock.
func openV2(p *kvPart, sb uint64) error {
	a := p.arena
	chunkSz := a.Read8(sb + sbChunkSzOff)
	nShards := a.Read8(sb + sbShardsOff)
	table := a.Read8(sb + sbTableOff)
	if nShards == 0 || nShards > MaxShards || nShards&(nShards-1) != 0 {
		return fmt.Errorf("kv: corrupt superblock: shard count %d", nShards)
	}
	if chunkSz < 2*pmem.LineSize || chunkSz%pmem.LineSize != 0 {
		return fmt.Errorf("kv: corrupt superblock: chunk size %d", chunkSz)
	}
	if table == pmem.NullOff {
		return fmt.Errorf("kv: corrupt superblock: null shard table")
	}
	p.sbOff = sb
	p.initShards(chunkSz, int(nShards), table)

	// The tree's recovery reset the allocator to cover only tree state;
	// extend it past the superblock, the shard table and every log chunk
	// of every chain (including a legacy chain mid-migration) so the
	// allocator cannot hand out offsets overlapping live log data.
	maxOff := a.Bump()
	grow := func(end uint64) {
		if end > maxOff {
			maxOff = end
		}
	}
	grow(sb + pmem.LineSize)
	grow(table + nShards*pmem.LineSize)
	for i := range p.shards {
		for c := a.Read8(p.shards[i].tabOff); c != pmem.NullOff; c = a.Read8(c + chunkNextOff) {
			grow(c + chunkSz)
		}
	}
	legacy := a.Read8(sb + sbLegacyOff)
	legacySz := a.Read8(sb + sbLegacySzOff)
	if legacy != pmem.NullOff {
		for c := legacy; c != pmem.NullOff; c = a.Read8(c + chunkNextOff) {
			grow(c + legacySz)
		}
	}
	if r := a.Read8(rootReplOff); r != pmem.NullOff {
		grow(r + pmem.LineSize)
	}
	a.SetBump(maxOff)
	for i := range p.shards {
		if err := p.newShardChunk(&p.shards[i]); err != nil {
			return err
		}
	}
	// A non-null legacy chain means a v1→v2 migration was interrupted by a
	// crash; finish it (idempotent) before the store is published.
	if legacy != pmem.NullOff {
		if err := p.finishMigration(legacy, legacySz); err != nil {
			return err
		}
	}
	return nil
}

// openV1 migrates a legacy single-chain store to the sharded v2 format: it
// builds a fresh v2 superblock whose legacy slot references the old chain,
// flips the root pointer (the commit point — before it the image is still
// v1, after it openV2 can always finish the job), then rewrites every
// record into its hash shard and frees the old chunks. (The caller then
// stamps the v3 partition words on top.)
//
// v1 never persisted its geometry, so walking the old chain must trust
// opts.ChunkSize — the historical footgun the v2 format removed.
func openV1(p *kvPart, sb uint64, opts Options) error {
	a := p.arena
	chunkSz := opts.ChunkSize
	oldHead := a.Read8(sb + sbV1ChunkOff)
	maxOff := a.Bump()
	if sb+pmem.LineSize > maxOff {
		maxOff = sb + pmem.LineSize
	}
	for c := oldHead; c != pmem.NullOff; c = a.Read8(c + chunkNextOff) {
		if c+chunkSz > maxOff {
			maxOff = c + chunkSz
		}
	}
	if r := a.Read8(rootReplOff); r != pmem.NullOff && r+pmem.LineSize > maxOff {
		maxOff = r + pmem.LineSize
	}
	a.SetBump(maxOff)

	sb2, err := a.Alloc(pmem.LineSize)
	if err != nil {
		return err
	}
	table, err := a.Alloc(uint64(opts.Shards) * pmem.LineSize)
	if err != nil {
		return err
	}
	p.sbOff = sb2
	p.initShards(chunkSz, opts.Shards, table)
	for i := range p.shards {
		a.Write8(p.shards[i].tabOff, pmem.NullOff)
	}
	a.Persist(table, uint64(opts.Shards)*pmem.LineSize)
	for i := range p.shards {
		if err := p.newShardChunk(&p.shards[i]); err != nil {
			return err
		}
	}
	a.Write8(sb2+sbMagicOff, storeMagicV2)
	a.Write8(sb2+sbChunkSzOff, chunkSz)
	a.Write8(sb2+sbShardsOff, uint64(opts.Shards))
	a.Write8(sb2+sbTableOff, table)
	a.Write8(sb2+sbLegacyOff, oldHead)
	a.Write8(sb2+sbLegacySzOff, chunkSz)
	a.Persist(sb2, pmem.LineSize)
	a.Write8(rootStoreOff, sb2)
	a.Persist(rootStoreOff, 8)

	return p.finishMigration(oldHead, chunkSz)
}

// rebuild migrates a recovered store into a fresh one with the requested
// partition count by rehashing every live pair. The source store is
// discarded afterwards; since its arenas are never mutated, an interrupted
// rebuild is simply restarted by the next Open.
func rebuild(src *Store, opts Options) (*Store, error) {
	dst, err := New(opts)
	if err != nil {
		return nil, err
	}
	var fail error
	src.Range(func(key, value []byte) bool {
		if err := dst.Put(key, value); err != nil {
			fail = err
			return false
		}
		return true
	})
	if fail != nil {
		return nil, fail
	}
	return dst, nil
}

// finishMigration rewrites every indexed record into its hash shard's
// chain, then unlinks and frees the legacy chunks. Runs single-threaded
// inside Open before the store is published. Crash-safe: records are
// persisted into (persistently linked) shard chunks before the index is
// repointed, and the legacy chain stays allocator-protected until the
// legacy slot is cleared; if a crash interrupts it, the next Open reruns
// it, and any re-appended duplicates are invisible behind the newest chain
// entries and reclaimed by the next Compact.
func (p *kvPart) finishMigration(legacyHead, legacySz uint64) error {
	var fail error
	p.tree.Scan(0, 0, func(hash, off uint64) bool {
		live := p.collectLive(off, false)
		if len(live) == 0 {
			if err := p.tree.Remove(hash); err != nil {
				fail = err
				return false
			}
			return true
		}
		if err := p.rewriteChain(p.shardFor(hash), hash, live); err != nil {
			fail = err
			return false
		}
		return true
	})
	if fail != nil {
		return fail
	}
	p.arena.Write8(p.sbOff+sbLegacyOff, pmem.NullOff)
	p.arena.Persist(p.sbOff+sbLegacyOff, 8)
	for c := legacyHead; c != pmem.NullOff; {
		nxt := p.arena.Read8(c + chunkNextOff)
		p.arena.Free(c, legacySz)
		c = nxt
	}
	return nil
}

// recount rebuilds the partition's per-shard live counters exactly by
// walking every hash chain (dead records restart at zero after recovery;
// Compact re-derives them), and recovers the partition's LSN counter as the
// max LSN over all reachable records — the durable replication watermark: a
// record whose tree publish did not survive the crash is unreachable, so a
// replica resubscribing from this watermark re-receives it. Runs
// single-threaded inside Open.
func (p *kvPart) recount() {
	maxLSN := uint64(0)
	p.tree.Scan(0, 0, func(hash, off uint64) bool {
		n := 0
		seen := map[string]bool{}
		for off != 0 {
			kind, key, next := p.readRecordMeta(off)
			if l := p.readLSN(off); l > maxLSN {
				maxLSN = l
			}
			if !seen[string(key)] {
				seen[string(key)] = true
				if kind == recPut {
					n++
				}
			}
			off = next
		}
		if n > 0 {
			p.shardFor(hash).live.Add(int64(n))
		}
		return true
	})
	if maxLSN > p.lsn.Load() {
		p.lsn.Store(maxLSN)
	}
}
