package kv

import (
	"fmt"
	"testing"
)

func replTestOpts() Options {
	return Options{ArenaSize: 8 << 20, ChunkSize: 512, Shards: 1, Partitions: 2}
}

// LSNs are per-partition, start at 1, and increase by exactly one per
// committed mutation on that partition.
func TestReplLSNMonotonic(t *testing.T) {
	s, err := New(replTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	last := make([]uint64, s.Partitions())
	for i := 0; i < 64; i++ {
		key := []byte(fmt.Sprintf("k%03d", i))
		part, lsn, err := s.PutEx(key, []byte("v"))
		if err != nil {
			t.Fatal(err)
		}
		if lsn != last[part]+1 {
			t.Fatalf("put %d: partition %d jumped %d -> %d", i, part, last[part], lsn)
		}
		last[part] = lsn
		if got := s.ReplLSN(part); got != lsn {
			t.Fatalf("ReplLSN(%d) = %d, want %d", part, got, lsn)
		}
	}
	for part, want := range last {
		if got := s.ReplLSNs()[part]; got != want {
			t.Fatalf("ReplLSNs()[%d] = %d, want %d", part, got, want)
		}
	}
}

// The LSN watermark is recovered from the records themselves: reopening a
// crash image restores each partition's watermark to the highest reachable
// LSN, so a restarted replica resubscribes from the right place and a
// restarted primary never reuses an LSN.
func TestReplLSNRecovered(t *testing.T) {
	s, err := New(replTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete([]byte("k001")); err != nil {
		t.Fatal(err)
	}
	want := s.ReplLSNs()
	imgs := make([][]uint64, len(s.Arenas()))
	for i, a := range s.Arenas() {
		imgs[i] = a.CrashImage(nil, 0)
	}
	s2, err := Open(imgs, replTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	for part, w := range want {
		if got := s2.ReplLSN(part); got != w {
			t.Fatalf("partition %d: recovered watermark %d, want %d", part, got, w)
		}
	}
	// New writes continue above the recovered watermark.
	part, lsn, err := s2.PutEx([]byte("post-recovery"), []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != want[part]+1 {
		t.Fatalf("post-recovery LSN %d on partition %d, want %d", lsn, part, want[part]+1)
	}
}

// ReplApply is idempotent by LSN: re-shipping records at or below the
// watermark (reconnect replay) changes nothing, and the watermark advances
// through gaps (a primary can burn an LSN on a failed append).
func TestReplApplyIdempotent(t *testing.T) {
	r, err := New(replTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("k")
	part := r.PartitionOf(key)
	apply := func(lsn uint64, kind uint8, val string) {
		t.Helper()
		if err := r.ReplApply(part, lsn, kind, key, []byte(val)); err != nil {
			t.Fatalf("apply lsn %d: %v", lsn, err)
		}
	}
	apply(1, ReplPut, "v1")
	apply(2, ReplPut, "v2")
	// Replays at or below the watermark are skipped, not re-applied.
	apply(1, ReplPut, "stale1")
	apply(2, ReplPut, "stale2")
	if v, err := r.Get(key); err != nil || string(v) != "v2" {
		t.Fatalf("after replay: %q, %v", v, err)
	}
	// A gap is accepted and the watermark jumps it.
	apply(7, ReplPut, "v7")
	if got := r.ReplLSN(part); got != 7 {
		t.Fatalf("watermark %d, want 7", got)
	}
	apply(8, ReplDelete, "")
	if _, err := r.Get(key); err != ErrNotFound {
		t.Fatalf("after shipped delete: %v", err)
	}
	// Bad inputs are rejected.
	if err := r.ReplApply(part, 9, 99, key, nil); err == nil {
		t.Fatal("bad kind accepted")
	}
	if err := r.ReplApply(len(want(r)), 9, ReplPut, key, nil); err == nil {
		t.Fatal("out-of-range partition accepted")
	}
	wrong := (part + 1) % r.Partitions()
	if err := r.ReplApply(wrong, 9, ReplPut, key, []byte("v")); err == nil {
		t.Fatal("mis-routed record accepted")
	}
}

func want(s *Store) []uint64 { return s.ReplLSNs() }

// ReplBacklog streams the reachable records above a watermark in ascending
// LSN order — the retransmit path a resubscribing replica heals from.
func TestReplBacklogOrdered(t *testing.T) {
	s, err := New(replTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete([]byte("k003")); err != nil {
		t.Fatal(err)
	}
	for part := 0; part < s.Partitions(); part++ {
		from := uint64(2)
		var lsns []uint64
		err := s.ReplBacklog(part, from, func(lsn uint64, kind uint8, key, val []byte) bool {
			lsns = append(lsns, lsn)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, l := range lsns {
			if l <= from {
				t.Fatalf("partition %d: backlog shipped lsn %d <= from %d", part, l, from)
			}
			if i > 0 && l <= lsns[i-1] {
				t.Fatalf("partition %d: backlog out of order: %v", part, lsns)
			}
		}
		if top := s.ReplLSN(part); len(lsns) == 0 || lsns[len(lsns)-1] != top {
			t.Fatalf("partition %d: backlog does not reach the watermark %d: %v", part, top, lsns)
		}
	}
}

// A backlog larger than one pass's buffer budget streams in bounded LSN
// windows: the full stream still arrives, complete and ascending, without
// the store ever materializing the whole partition for one subscriber.
func TestReplBacklogWindowed(t *testing.T) {
	oldRecs, oldBytes := replBacklogMaxRecs, replBacklogMaxBytes
	replBacklogMaxRecs, replBacklogMaxBytes = 7, 1<<20
	defer func() { replBacklogMaxRecs, replBacklogMaxBytes = oldRecs, oldBytes }()
	s, err := New(replTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for part := 0; part < s.Partitions(); part++ {
		var lsns []uint64
		err := s.ReplBacklog(part, 0, func(lsn uint64, _ uint8, _, _ []byte) bool {
			lsns = append(lsns, lsn)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(lsns) != int(s.ReplLSN(part)) {
			t.Fatalf("partition %d: %d records streamed, watermark %d", part, len(lsns), s.ReplLSN(part))
		}
		for i, l := range lsns {
			if l != uint64(i)+1 {
				t.Fatalf("partition %d: stream gap or reorder at %d: %v", part, i, lsns[:i+1])
			}
		}
	}
	// The byte budget alone also forces windows (and a record bigger than
	// the whole budget still makes progress).
	replBacklogMaxRecs, replBacklogMaxBytes = 1<<30, 16
	for part := 0; part < s.Partitions(); part++ {
		count := 0
		if err := s.ReplBacklog(part, 0, func(uint64, uint8, []byte, []byte) bool {
			count++
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if count != int(s.ReplLSN(part)) {
			t.Fatalf("partition %d: byte-budgeted stream delivered %d of %d", part, count, s.ReplLSN(part))
		}
	}
}

// ReplBacklog never delivers a record committed after the replay started:
// the stream is bounded by a barrier snapshot of the partition LSN taken
// under the commit mutex, so a subscriber's cursor cannot advance past a
// record the lock-free tree scan raced with (that record's copy is in the
// live ship queue, above the barrier). Mutating from inside fn is the
// deterministic way to commit concurrently with the walk.
func TestReplBacklogBarrier(t *testing.T) {
	// Small windows force several scan passes, so the mid-walk commits below
	// are visible to later passes — only the barrier keeps them out.
	oldRecs := replBacklogMaxRecs
	replBacklogMaxRecs = 3
	defer func() { replBacklogMaxRecs = oldRecs }()
	s, err := New(replTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	s.SetCommitHook(func(int, uint64, uint8, []byte, []byte) {})
	for i := 0; i < 20; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for part := 0; part < s.Partitions(); part++ {
		barrier := s.ReplLSN(part)
		i := 0
		err := s.ReplBacklog(part, 0, func(lsn uint64, _ uint8, _, _ []byte) bool {
			if lsn > barrier {
				t.Fatalf("partition %d: replay delivered lsn %d above barrier %d", part, lsn, barrier)
			}
			// Commit new records mid-walk; they must stay out of this stream.
			if err := s.Put([]byte(fmt.Sprintf("mid-%d-%d", part, i)), []byte("v")); err != nil {
				t.Fatal(err)
			}
			i++
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// Replaying a full backlog into a fresh store converges it to the source's
// contents, tombstones included.
func TestReplBacklogConverges(t *testing.T) {
	src, err := New(replTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := src.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := src.Delete([]byte(fmt.Sprintf("k%03d", i*3))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := src.Put([]byte(fmt.Sprintf("k%03d", i*4)), []byte("rewritten")); err != nil {
			t.Fatal(err)
		}
	}
	dst, err := New(replTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	for part := 0; part < src.Partitions(); part++ {
		err := src.ReplBacklog(part, 0, func(lsn uint64, kind uint8, key, val []byte) bool {
			if err := dst.ReplApply(part, lsn, kind, key, val); err != nil {
				t.Fatalf("apply: %v", err)
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	srcM := map[string]string{}
	src.Range(func(k, v []byte) bool { srcM[string(k)] = string(v); return true })
	n := 0
	dst.Range(func(k, v []byte) bool {
		n++
		if srcM[string(k)] != string(v) {
			t.Fatalf("diverged at %q: %q vs %q", k, v, srcM[string(k)])
		}
		return true
	})
	if n != len(srcM) {
		t.Fatalf("replica has %d keys, source %d", n, len(srcM))
	}
}

// With a commit hook installed the log is a replication history: compaction
// must keep the newest tombstones (a replica that resubscribes from an old
// watermark needs to learn about the delete), and the watermark must not
// regress across a compact + reopen.
func TestReplCompactKeepsTombstones(t *testing.T) {
	s, err := New(replTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	s.SetCommitHook(func(part int, lsn uint64, kind uint8, key, val []byte) {})
	for i := 0; i < 20; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// The deletes are the newest records on their keys; compaction with a
	// hook installed must preserve them.
	for i := 15; i < 20; i++ {
		if err := s.Delete([]byte(fmt.Sprintf("k%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	before := s.ReplLSNs()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	for part, w := range before {
		var maxLSN uint64
		err := s.ReplBacklog(part, 0, func(lsn uint64, _ uint8, _, _ []byte) bool {
			if lsn > maxLSN {
				maxLSN = lsn
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if maxLSN != w {
			t.Fatalf("partition %d: compaction dropped the newest record: backlog tops at %d, watermark %d", part, maxLSN, w)
		}
	}
	imgs := make([][]uint64, len(s.Arenas()))
	for i, a := range s.Arenas() {
		imgs[i] = a.CrashImage(nil, 0)
	}
	s2, err := Open(imgs, replTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	for part, w := range before {
		if got := s2.ReplLSN(part); got != w {
			t.Fatalf("partition %d: watermark regressed across compact+reopen: %d, want %d", part, got, w)
		}
	}
}

// ReplState round-trips, survives reopen, and the packed word updates
// atomically (promotion is one persist).
func TestReplStatePersists(t *testing.T) {
	s, err := New(replTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	if e, r := s.ReplState(); e != 0 || r != 0 {
		t.Fatalf("fresh store repl state = (%d, %d)", e, r)
	}
	if err := s.SetReplState(3, 2); err != nil {
		t.Fatal(err)
	}
	if e, r := s.ReplState(); e != 3 || r != 2 {
		t.Fatalf("repl state = (%d, %d), want (3, 2)", e, r)
	}
	if err := s.SetReplState(4, 1); err != nil {
		t.Fatal(err)
	}
	imgs := make([][]uint64, len(s.Arenas()))
	for i, a := range s.Arenas() {
		imgs[i] = a.CrashImage(nil, 0)
	}
	s2, err := Open(imgs, replTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	if e, r := s2.ReplState(); e != 4 || r != 1 {
		t.Fatalf("reopened repl state = (%d, %d), want (4, 1)", e, r)
	}
	if err := s2.SetReplState(1<<56, 1); err == nil {
		t.Fatal("oversized epoch accepted")
	}
}

// The commit hook fires once per committed mutation, after the commit
// point, in LSN order per partition, with the record's kind and payload.
func TestCommitHookOrdered(t *testing.T) {
	s, err := New(replTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	type ev struct {
		lsn  uint64
		kind uint8
		key  string
	}
	seen := make([][]ev, s.Partitions())
	s.SetCommitHook(func(part int, lsn uint64, kind uint8, key, val []byte) {
		seen[part] = append(seen[part], ev{lsn, kind, string(key)})
	})
	for i := 0; i < 20; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete([]byte("k002")); err != nil {
		t.Fatal(err)
	}
	total := 0
	for part, evs := range seen {
		total += len(evs)
		for i, e := range evs {
			if uint64(i)+1 != e.lsn {
				t.Fatalf("partition %d: hook fired lsn %d at position %d", part, e.lsn, i)
			}
		}
	}
	if total != 21 {
		t.Fatalf("hook fired %d times, want 21", total)
	}
	last := seen[s.PartitionOf([]byte("k002"))]
	if e := last[len(last)-1]; e.kind != ReplDelete || e.key != "k002" {
		t.Fatalf("last event on k002's partition: %+v", e)
	}
}
