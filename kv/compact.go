package kv

import "rntree/internal/pmem"

// liveRec is one record Compact or migration carries over. Kind and LSN are
// preserved verbatim: a rewritten record is the same logical commit, so its
// replication identity (and the recovered LSN watermark) must survive
// compaction.
type liveRec struct {
	kind int
	lsn  uint64
	key  []byte
	val  []byte
}

// collectLive walks a hash chain newest-first and returns the newest record
// of every distinct key, preserving chain order (newest first). With
// keepTombs false, tombstoned keys are dropped entirely; with keepTombs true
// (replicating stores) the newest record is kept even when it is a
// tombstone, so a subscriber resuming from an old LSN still hears about the
// delete.
func (p *kvPart) collectLive(off uint64, keepTombs bool) []liveRec {
	var live []liveRec
	seen := map[string]bool{}
	for off != 0 {
		kind, key, val, next := p.readRecord(off)
		if !seen[string(key)] {
			seen[string(key)] = true
			if kind == recPut || keepTombs {
				live = append(live, liveRec{kind, p.readLSN(off), key, val})
			}
		}
		off = next
	}
	return live
}

// rewriteChain re-appends records (given newest-first) into sh's log,
// preserving their order, kinds and LSNs, and repoints the index. Caller
// holds sh.mu (or the store is not yet published).
func (p *kvPart) rewriteChain(sh *shard, hash uint64, live []liveRec) error {
	next := uint64(0)
	for i := len(live) - 1; i >= 0; i-- {
		off, err := p.appendRecord(sh, live[i].kind, live[i].lsn, live[i].key, live[i].val, next)
		if err != nil {
			return err
		}
		next = off
	}
	return p.tree.Upsert(hash, next)
}

// Compact rewrites every live record into fresh chunks and retires the old
// ones, reclaiming space from overwritten values and tombstones. It works
// one shard at a time, holding only that shard's lock — writers on the
// other shards and partitions (and all readers) keep running, so
// compaction never stops the world.
//
// On a store with a commit hook installed (a replication primary or
// replica), each key's newest tombstone is preserved instead of dropped, so
// the log remains a complete replication history; see SetCommitHook.
func (s *Store) Compact() error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed.Load() {
		return ErrClosed
	}
	keepTombs := s.commitHook() != nil
	for pi := range s.parts {
		p := &s.parts[pi]
		for i := range p.shards {
			if err := p.compactShard(&p.shards[i], keepTombs); err != nil {
				return err
			}
		}
	}
	return nil
}

// compactShard rewrites the live records of every hash belonging to sh
// into fresh chunks, then cuts the old chunks out of the chain.
//
// Crash safety: the fresh chunks are stacked on top of the old chain, so
// at every instant the whole chain — old records still referenced by
// not-yet-rewritten hashes included — is reachable from the shard table
// and therefore allocator-protected across a crash. Only after every hash
// is repointed is the chain cut (one persisted pointer write).
//
// Reader safety: lock-free readers may still be walking the old records,
// so the cut chunks are only retired here; the actual free happens at the
// start of the next compaction of this shard, a full cycle later.
func (p *kvPart) compactShard(sh *shard, keepTombs bool) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, c := range sh.retired {
		p.arena.Free(c, p.chunkSz)
	}
	sh.retired = nil

	oldHead := p.arena.Read8(sh.tabOff)
	if err := p.newShardChunk(sh); err != nil {
		return err
	}
	cut := sh.chunk // its next pointer is oldHead until the cut below

	live := int64(0)
	dead := int64(0)
	var fail error
	p.tree.Scan(0, 0, func(hash, off uint64) bool {
		if p.shardFor(hash) != sh {
			return true
		}
		recs := p.collectLive(off, keepTombs)
		if len(recs) == 0 {
			if err := p.tree.Remove(hash); err != nil {
				fail = err
				return false
			}
			return true
		}
		if err := p.rewriteChain(sh, hash, recs); err != nil {
			fail = err
			return false
		}
		for _, r := range recs {
			if r.kind == recPut {
				live++
			} else {
				dead++ // preserved tombstone: still reclaimable garbage
			}
		}
		return true
	})
	if fail != nil {
		return fail
	}

	if oldHead != pmem.NullOff {
		p.arena.Write8(cut+chunkNextOff, pmem.NullOff)
		p.arena.Persist(cut+chunkNextOff, 8)
		for c := oldHead; c != pmem.NullOff; {
			nxt := p.arena.Read8(c + chunkNextOff)
			sh.retired = append(sh.retired, c)
			c = nxt
		}
	}
	sh.live.Store(live)
	sh.dead.Store(dead)
	return nil
}
