package kv

import (
	"sort"
	"sync"
)

// Batched writes. PutBatch is the fence-amortization entry point the
// network server's cross-connection write batcher uses: where N separate
// Puts to one shard cost N ranged persists (one fence each) for their log
// records, a batch groups the pairs by shard, holds each shard's lock
// once, lays the records down back-to-back and persists every contiguous
// run with a single call — one fence per chunk-run instead of one per
// record. The commit point is unchanged: records are durable in the value
// log before any tree slot points at them, so an acknowledged batch entry
// has exactly the durable-linearizability story of an individual Put.

// persistSpan accumulates the contiguous byte range of records appended to
// the current chunk and flushes it with one ranged persist.
type persistSpan struct {
	start, end uint64
	active     bool
}

func (sp *persistSpan) add(p *kvPart, off, size uint64) {
	if sp.active && off == sp.end {
		sp.end += size
		return
	}
	sp.flush(p)
	sp.start, sp.end, sp.active = off, off+size, true
}

func (sp *persistSpan) flush(p *kvPart) {
	if sp.active {
		// Spans cover only streamed (write-through) record bytes, so the
		// fence needs no flush copy — just the media occupancy and drain.
		p.arena.PersistStream(sp.start, sp.end-sp.start)
		sp.active = false
	}
}

// appendRecordDeferred is appendRecord with the persist folded into span:
// the caller must flush the span before making any record of it reachable.
func (p *kvPart) appendRecordDeferred(sh *shard, sp *persistSpan, kind int, lsn uint64, key, val []byte, next uint64) (uint64, error) {
	size := recSize(len(key), len(val))
	if size > p.chunkSz-chunkHdrSize {
		return 0, ErrTooLarge
	}
	if sh.used+size > p.chunkSz {
		// Rolling to a fresh chunk persists chain pointers of its own;
		// flush the old chunk's span first so the batch's persists stay
		// contiguous runs.
		sp.flush(p)
		if err := p.newShardChunk(sh); err != nil {
			return 0, err
		}
	}
	off := sh.chunk + sh.used
	sh.used += size
	hdr := uint64(kind) | uint64(len(key))<<8 | uint64(len(val))<<32
	// Streaming stores, as in appendRecord: the span's PersistStream
	// fences before putGroup publishes any tree pointer to these bytes.
	p.arena.Write8Stream(off, hdr)
	p.arena.Write8Stream(off+8, next)
	p.arena.Write8Stream(off+recLSNOff, lsn)
	streamPadded(p.arena, off+recHdrSize, key)
	streamPadded(p.arena, off+recHdrSize+(uint64(len(key))+7)&^7, val)
	sp.add(p, off, size)
	return off, nil
}

// PutBatch stores every keys[i] → vals[i] pair (len(vals) must equal
// len(keys); insert or overwrite, duplicates within the batch allowed and
// applied in order). It returns nil if every pair was stored, otherwise a
// slice with one error per pair (nil entries succeeded). When PutBatch
// returns, every pair without an error is durable.
//
// Pairs are grouped by value-log shard; each shard's records are persisted
// in contiguous runs (one fence per run) before its tree slots are
// updated. Batches therefore interleave arbitrarily with concurrent Puts
// on other shards, and hold each shard lock no longer than the same pairs
// written individually would in aggregate.
func (s *Store) PutBatch(keys, vals [][]byte) []error {
	return s.putBatch(keys, vals, nil, nil)
}

// PutBatchEx is PutBatch additionally reporting, for every pair that
// succeeded, its partition index and committed LSN into parts/lsns (each
// must have len(keys) entries; failed pairs are left untouched). The
// replicating server's batcher uses it to wait for durable-ack PUTs.
func (s *Store) PutBatchEx(keys, vals [][]byte, parts []int, lsns []uint64) []error {
	if len(parts) != len(keys) || len(lsns) != len(keys) {
		panic("kv: PutBatchEx parts/lsns length mismatch")
	}
	return s.putBatch(keys, vals, parts, lsns)
}

func (s *Store) putBatch(keys, vals [][]byte, partsOut []int, lsnsOut []uint64) []error {
	if len(keys) != len(vals) {
		panic("kv: PutBatch keys/vals length mismatch")
	}
	if len(keys) == 0 {
		return nil
	}
	var (
		errMu sync.Mutex
		errs  []error
	)
	fail := func(i int, err error) {
		errMu.Lock()
		if errs == nil {
			errs = make([]error, len(keys))
		}
		errs[i] = err
		errMu.Unlock()
	}
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed.Load() {
		for i := range keys {
			fail(i, ErrClosed)
		}
		return errs
	}

	// Group pair indices by destination shard, preserving batch order
	// within each group (order matters for duplicate keys).
	hashes := make([]uint64, len(keys))
	groups := map[*shard][]int{}
	partOf := map[*shard]int{}
	for i, k := range keys {
		if len(k) == 0 {
			fail(i, ErrEmptyKey)
			continue
		}
		h := s.hash(k)
		hashes[i] = h
		pi := s.f.PartitionFor(h)
		sh := s.parts[pi].shardFor(h)
		groups[sh] = append(groups[sh], i)
		partOf[sh] = pi
	}
	// The commit hook needs each record's LSN to ship it; allocate the
	// shared per-pair LSN table if the caller didn't provide one. Groups
	// write disjoint indices, so sharing it across goroutines is safe. The
	// hook is read exactly once and passed down: putGroup re-reading it
	// could observe a hook installed after this nil check and index a nil
	// lsnsOut.
	hook := s.commitHook()
	if lsnsOut == nil && hook != nil {
		lsnsOut = make([]uint64, len(keys))
	}
	// Apply the groups concurrently: every group holds a different shard
	// lock and persists its records into its own contiguous run, so the
	// drain stalls of groups on different partition arenas overlap (one
	// drain engine per arena) instead of queueing behind one another on
	// the calling goroutine. This is where a cross-connection batch beats
	// the same writes issued serially: the fences amortize within a group
	// AND the media occupancy overlaps across groups.
	if len(groups) == 1 {
		for sh, idxs := range groups {
			s.putGroup(partOf[sh], sh, idxs, keys, vals, hashes, partsOut, lsnsOut, hook, fail)
		}
		return errs
	}
	var wg sync.WaitGroup
	for sh, idxs := range groups {
		wg.Add(1)
		go func(pi int, sh *shard, idxs []int) {
			defer wg.Done()
			s.putGroup(pi, sh, idxs, keys, vals, hashes, partsOut, lsnsOut, hook, fail)
		}(partOf[sh], sh, idxs)
	}
	wg.Wait()
	return errs
}

// batchEntry is putGroup's per-unique-hash state: the newest record this
// batch appended for the hash, the batch indices that fed it (for Upsert
// failure reporting), and the hash's live/dead accounting delta. Batches
// are small (bounded by the server batcher's MaxBatch), so entries are
// found by linear scan instead of a map — cheaper and allocation-free.
type batchEntry struct {
	hash       uint64
	head       uint64
	live, dead int64
	idxs       []int
}

// batchKeyKind records the kind of the newest record appended for an exact
// key within the current batch (hashes can collide; kinds cannot be keyed
// by hash alone). The key slice is borrowed from the caller and only valid
// during the putGroup call that wrote it.
type batchKeyKind struct {
	key  []byte
	kind int
}

// putGroup applies one shard's slice of a batch under that shard's lock:
// append all records (deferring persists into contiguous spans), flush,
// then repoint each touched hash at its newest record. partsOut/lsnsOut,
// when non-nil, receive each successful pair's partition and LSN (groups
// write disjoint indices). hook is putBatch's one read of the commit hook,
// consistent with its lsnsOut allocation.
func (s *Store) putGroup(pi int, sh *shard, idxs []int, keys, vals [][]byte, hashes []uint64, partsOut []int, lsnsOut []uint64, hook CommitHook, fail func(int, error)) {
	p := &s.parts[pi]
	if hook != nil {
		// Same lock order as PutEx: replMu, then the shard mu, held across
		// the whole group so the hook sees this partition's commits in LSN
		// order.
		p.replMu.Lock()
		defer p.replMu.Unlock()
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()

	var sp persistSpan
	ents := sh.batchEnts[:0]
	kinds := sh.batchKinds[:0]

	for _, i := range idxs {
		h, key, val := hashes[i], keys[i], vals[i]
		var e *batchEntry
		for j := range ents {
			if ents[j].hash == h {
				e = &ents[j]
				break
			}
		}
		var next uint64
		var prevKind int
		if e != nil {
			// The chain head is a record we just appended; its kind chain
			// covers both batch-local and pre-existing records (the
			// appended records are readable from the cache before their
			// persist).
			next = e.head
			known := false
			for j := range kinds {
				if string(kinds[j].key) == string(key) {
					prevKind, known = kinds[j].kind, true
					break
				}
			}
			if !known {
				prevKind = p.chainFindKind(next, key)
			}
		} else if oldHead, existed := p.tree.Find(h); existed {
			next = oldHead
			prevKind = p.chainFindKind(oldHead, key)
		}
		lsn := p.lsn.Add(1)
		off, err := p.appendRecordDeferred(sh, &sp, recPut, lsn, key, val, next)
		if err != nil {
			fail(i, err)
			continue
		}
		if lsnsOut != nil {
			lsnsOut[i] = lsn
		}
		if e == nil {
			if len(ents) < cap(ents) {
				ents = ents[:len(ents)+1]
				e = &ents[len(ents)-1]
				e.live, e.dead = 0, 0
				e.idxs = e.idxs[:0]
			} else {
				ents = append(ents, batchEntry{})
				e = &ents[len(ents)-1]
			}
			e.hash = h
		}
		e.head = off
		e.idxs = append(e.idxs, i)
		set := false
		for j := range kinds {
			if string(kinds[j].key) == string(key) {
				kinds[j].kind, set = recPut, true
				break
			}
		}
		if !set {
			kinds = append(kinds, batchKeyKind{key: key, kind: recPut})
		}
		if prevKind == recPut {
			e.dead++ // overwrite: the shadowed value record is garbage
		} else {
			e.live++ // fresh key, or reinsert over a tombstone
		}
	}
	// Records must be durable before they become reachable.
	sp.flush(p)
	var liveDelta, deadDelta int64
	var shipped []int
	for j := range ents {
		e := &ents[j]
		if err := p.tree.Upsert(e.hash, e.head); err != nil {
			// The appended records are durable but unreachable (leaked
			// until the next compaction); surface the failure on every
			// pair that fed this hash and drop the hash's accounting
			// deltas with it.
			for _, i := range e.idxs {
				fail(i, mapFull(err))
			}
			continue
		}
		liveDelta += e.live
		deadDelta += e.dead
		for _, i := range e.idxs {
			if partsOut != nil {
				partsOut[i] = pi
			}
			if hook != nil {
				shipped = append(shipped, i)
			}
		}
	}
	sh.live.Add(liveDelta)
	sh.dead.Add(deadDelta)
	if hook != nil {
		// Hashes were published in entry order, not LSN order; re-sort the
		// committed pairs so the hook's per-partition LSN stream stays
		// monotonic (the shipping cursor treats it as a watermark).
		sort.Slice(shipped, func(a, b int) bool { return lsnsOut[shipped[a]] < lsnsOut[shipped[b]] })
		for _, i := range shipped {
			hook(pi, lsnsOut[i], ReplPut, keys[i], vals[i])
		}
	}
	// Drop borrowed key references before the caller recycles its payload
	// buffers, then park the scratch for the next batch.
	for j := range kinds {
		kinds[j].key = nil
	}
	sh.batchEnts, sh.batchKinds = ents, kinds
}
