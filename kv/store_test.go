package kv

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func newStore(t testing.TB) *Store {
	t.Helper()
	s, err := New(Options{ArenaSize: 128 << 20, ChunkSize: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetDelete(t *testing.T) {
	s := newStore(t)
	if err := s.Put([]byte("hello"), []byte("world")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get([]byte("hello"))
	if err != nil || string(v) != "world" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if _, err := s.Get([]byte("absent")); err != ErrNotFound {
		t.Fatalf("absent Get: %v", err)
	}
	if err := s.Put([]byte("hello"), []byte("again")); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get([]byte("hello")); string(v) != "again" {
		t.Fatalf("overwrite invisible: %q", v)
	}
	if err := s.Delete([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get([]byte("hello")); err != ErrNotFound {
		t.Fatalf("deleted Get: %v", err)
	}
	if err := s.Delete([]byte("hello")); err != ErrNotFound {
		t.Fatalf("double delete: %v", err)
	}
	// Re-insert after delete.
	if err := s.Put([]byte("hello"), []byte("back")); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get([]byte("hello")); string(v) != "back" {
		t.Fatalf("reinsert: %q", v)
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	s := newStore(t)
	if err := s.Put(nil, []byte("x")); err != ErrEmptyKey {
		t.Fatal(err)
	}
	if err := s.Delete(nil); err != ErrEmptyKey {
		t.Fatal(err)
	}
}

func TestEmptyValueAllowed(t *testing.T) {
	s := newStore(t)
	if err := s.Put([]byte("k"), nil); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get([]byte("k"))
	if err != nil || len(v) != 0 {
		t.Fatalf("empty value: %q %v", v, err)
	}
	if !s.Has([]byte("k")) {
		t.Fatal("Has false for empty-value key")
	}
}

func TestLargeValuesAcrossChunks(t *testing.T) {
	s := newStore(t)
	rng := rand.New(rand.NewSource(1))
	vals := map[string][]byte{}
	for i := 0; i < 50; i++ {
		key := []byte(fmt.Sprintf("key-%04d", i))
		val := make([]byte, 1000+rng.Intn(20000))
		rng.Read(val)
		vals[string(key)] = val
		if err := s.Put(key, val); err != nil {
			t.Fatal(err)
		}
	}
	for k, want := range vals {
		got, err := s.Get([]byte(k))
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("key %s: %d bytes vs %d, err %v", k, len(got), len(want), err)
		}
	}
}

func TestTooLargeRejected(t *testing.T) {
	s := newStore(t)
	if err := s.Put([]byte("k"), make([]byte, 1<<16)); err != ErrTooLarge {
		t.Fatalf("oversized value: %v", err)
	}
}

func TestManyKeysAndRange(t *testing.T) {
	s := newStore(t)
	const n = 5000
	for i := 0; i < n; i++ {
		if err := s.Put([]byte(fmt.Sprintf("user:%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Len(); got != n {
		t.Fatalf("Len = %d", got)
	}
	seen := map[string]bool{}
	s.Range(func(k, v []byte) bool {
		if seen[string(k)] {
			t.Fatalf("Range emitted %q twice", k)
		}
		seen[string(k)] = true
		return true
	})
	if len(seen) != n {
		t.Fatalf("Range saw %d keys", len(seen))
	}
}

func TestCrashRecoveryDurability(t *testing.T) {
	s := newStore(t)
	want := map[string]string{}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("k%d", rng.Intn(1000))
		switch rng.Intn(3) {
		case 0, 1:
			v := fmt.Sprintf("v%d", i)
			if err := s.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			want[k] = v
		case 2:
			if _, ok := want[k]; ok {
				if err := s.Delete([]byte(k)); err != nil {
					t.Fatal(err)
				}
				delete(want, k)
			}
		}
	}
	img := s.Snapshot()
	s2, err := Open(img, Options{ArenaSize: 128 << 20, ChunkSize: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Len(); got != len(want) {
		t.Fatalf("recovered %d keys, want %d", got, len(want))
	}
	for k, v := range want {
		got, err := s2.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("recovered %q = %q,%v want %q", k, got, err, v)
		}
	}
	// Recovered store must accept writes without corrupting old data.
	if err := s2.Put([]byte("post-crash"), []byte("yes")); err != nil {
		t.Fatal(err)
	}
	if v, _ := s2.Get([]byte("post-crash")); string(v) != "yes" {
		t.Fatal("post-recovery write lost")
	}
}

func TestCompactReclaimsAndPreserves(t *testing.T) {
	s := newStore(t)
	// Heavy overwrite churn.
	for round := 0; round < 50; round++ {
		for i := 0; i < 100; i++ {
			if err := s.Put([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("r%d", round))); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 50; i++ {
		if err := s.Delete([]byte(fmt.Sprintf("k%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := s.Len(); got != 50 {
		t.Fatalf("post-compact Len = %d", got)
	}
	for i := 50; i < 100; i++ {
		v, err := s.Get([]byte(fmt.Sprintf("k%d", i)))
		if err != nil || string(v) != "r49" {
			t.Fatalf("post-compact k%d = %q,%v", i, v, err)
		}
	}
	for i := 0; i < 50; i++ {
		if _, err := s.Get([]byte(fmt.Sprintf("k%d", i))); err != ErrNotFound {
			t.Fatalf("deleted key resurrected by compact: k%d", i)
		}
	}
	// Compacted store survives a crash.
	s2, err := Open(s.Snapshot(), Options{ChunkSize: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 50 {
		t.Fatalf("recovered post-compact Len = %d", s2.Len())
	}
}

// TestPartitionedStore drives the full CRUD surface over a v3 multi-
// partition store and round-trips it through a snapshot: every partition
// arena must come back, in order, with the geometry it persisted.
func TestPartitionedStore(t *testing.T) {
	s, err := New(Options{ArenaSize: 256 << 20, ChunkSize: 1 << 14, Shards: 2, Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.Partitions() != 4 {
		t.Fatalf("Partitions = %d", s.Partitions())
	}
	want := map[string]string{}
	for i := 0; i < 2000; i++ {
		k, v := fmt.Sprintf("k%d", i%800), fmt.Sprintf("v%d", i)
		if err := s.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	for i := 0; i < 800; i += 5 {
		k := fmt.Sprintf("k%d", i)
		if err := s.Delete([]byte(k)); err != nil {
			t.Fatal(err)
		}
		delete(want, k)
	}
	if got := s.Len(); got != len(want) {
		t.Fatalf("Len = %d, want %d", got, len(want))
	}
	st := s.Stats()
	if st.Partitions != 4 || st.Shards != 8 || st.LiveKeys != len(want) {
		t.Fatalf("stats: %+v", st)
	}
	// Every partition must actually hold keys (Mix64 routing spreads them).
	for i := range s.parts {
		if s.parts[i].tree.Len() == 0 {
			t.Fatalf("partition %d empty", i)
		}
	}
	imgs := s.Snapshot()
	if len(imgs) != 4 {
		t.Fatalf("snapshot has %d images", len(imgs))
	}
	s2, err := Open(imgs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Partitions() != 4 {
		t.Fatalf("recovered Partitions = %d", s2.Partitions())
	}
	for k, v := range want {
		got, err := s2.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("recovered %q = %q,%v", k, got, err)
		}
	}
	if got := s2.Stats().LiveKeys; got != len(want) {
		t.Fatalf("recovered LiveKeys = %d, want %d", got, len(want))
	}

	// Reordered or incomplete image sets must be rejected, and the store
	// must notice its own superblock mismatch, not just the forest's.
	imgs[0], imgs[1] = imgs[1], imgs[0]
	if _, err := Open(imgs, Options{}); err == nil {
		t.Fatal("reordered image set accepted")
	}
	imgs[0], imgs[1] = imgs[1], imgs[0]
	if _, err := Open(imgs[:2], Options{}); err == nil {
		t.Fatal("partial image set accepted")
	}
}

// TestPartitionRebuild: opening with an explicit Partitions different from
// the persisted count migrates the store into fresh arenas with the
// requested geometry, preserving every live pair.
func TestPartitionRebuild(t *testing.T) {
	s, err := New(Options{ArenaSize: 64 << 20, ChunkSize: 1 << 14, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	for i := 0; i < 1000; i++ {
		k, v := fmt.Sprintf("k%d", i%400), fmt.Sprintf("v%d", i)
		if err := s.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	for i := 0; i < 400; i += 7 {
		k := fmt.Sprintf("k%d", i)
		if err := s.Delete([]byte(k)); err != nil {
			t.Fatal(err)
		}
		delete(want, k)
	}
	check := func(s *Store, parts int, tag string) {
		t.Helper()
		if s.Partitions() != parts {
			t.Fatalf("%s: Partitions = %d, want %d", tag, s.Partitions(), parts)
		}
		got := map[string]string{}
		s.Range(func(k, v []byte) bool { got[string(k)] = string(v); return true })
		if len(got) != len(want) {
			t.Fatalf("%s: %d keys, want %d", tag, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("%s: %q = %q, want %q", tag, k, got[k], v)
			}
		}
	}
	// 1 → 4 partitions.
	s4, err := Open(s.Snapshot(), Options{ArenaSize: 128 << 20, ChunkSize: 1 << 14, Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	check(s4, 4, "rebuild 1->4")
	// Zero keeps the persisted count.
	s4b, err := Open(s4.Snapshot(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	check(s4b, 4, "reopen keeps 4")
	// 4 → 2 partitions.
	s2, err := Open(s4.Snapshot(), Options{ArenaSize: 128 << 20, ChunkSize: 1 << 14, Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	check(s2, 2, "rebuild 4->2")
	// Rebuilt stores take writes.
	if err := s2.Put([]byte("post"), []byte("rebuild")); err != nil {
		t.Fatal(err)
	}
}

func TestHashStability(t *testing.T) {
	if Hash([]byte("abc")) != Hash([]byte("abc")) {
		t.Fatal("hash unstable")
	}
	if Hash([]byte("abc")) == Hash([]byte("abd")) {
		t.Fatal("suspicious collision")
	}
	if Hash([]byte("x"))>>63 != 0 {
		t.Fatal("hash uses bit 63")
	}
}

func TestBinaryKeysAndValues(t *testing.T) {
	s := newStore(t)
	key := []byte{0, 1, 2, 255, 254, 0}
	val := []byte{0, 0, 0, 7}
	if err := s.Put(key, val); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(key)
	if err != nil || !bytes.Equal(got, val) {
		t.Fatalf("binary roundtrip: %v %v", got, err)
	}
}

func TestConcurrentReadsDuringWrites(t *testing.T) {
	s := newStore(t)
	for i := 0; i < 200; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v0")); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for round := 1; round <= 100; round++ {
			for i := 0; i < 200; i++ {
				if err := s.Put([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", round))); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	for {
		select {
		case <-done:
			return
		default:
		}
		for i := 0; i < 200; i += 17 {
			v, err := s.Get([]byte(fmt.Sprintf("k%d", i)))
			if err != nil {
				t.Fatalf("key vanished during writes: %v", err)
			}
			if len(v) < 2 || v[0] != 'v' {
				t.Fatalf("torn value: %q", v)
			}
		}
	}
}

func TestStatsLiveKeysExactAfterOpenAndCompact(t *testing.T) {
	s := newStore(t)
	for i := 0; i < 100; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		if err := s.Delete([]byte(fmt.Sprintf("k%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(s.Snapshot(), Options{ChunkSize: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Stats().LiveKeys; got != 60 {
		t.Fatalf("LiveKeys after open = %d, want 60", got)
	}
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := s2.Stats().LiveKeys; got != 60 {
		t.Fatalf("LiveKeys after compact = %d, want 60", got)
	}
	if got := s2.Len(); got != 60 {
		t.Fatalf("Len after compact = %d", got)
	}
}
