package kv

import (
	"fmt"
	"math/rand"
	"testing"

	"rntree/internal/pmem"
)

// TestCrashFuzzDurableStore crashes the store at random persist boundaries
// (with random dirty-line eviction) during a randomized workload and checks
// that recovery yields exactly the committed operations, possibly plus the
// single in-flight one — the kv layer inherits RNTree's durable
// linearizability because records are persisted before they become
// reachable.
func TestCrashFuzzDurableStore(t *testing.T) {
	crashFuzzStore(t, Options{ArenaSize: 64 << 20, ChunkSize: 1 << 14}, nil)
}

// TestCrashFuzzCollisionChains re-runs the crash fuzzer with a degenerate
// hash (every key lands in one of seven chains) so that crash points land
// inside multi-key hash-chain updates, and with tiny chunks so they also
// land inside newChunk's chunk-link and shard-table persists.
func TestCrashFuzzCollisionChains(t *testing.T) {
	crashFuzzStore(t, Options{ArenaSize: 64 << 20, ChunkSize: 1 << 12, Shards: 4}, collide(7))
}

// TestCrashFuzzPartitioned runs the crash fuzzer over a four-partition
// store: the power loss snapshots every partition arena at the same
// instant, so recovery must reassemble a consistent store from the whole
// set even though only one partition holds the in-flight operation.
func TestCrashFuzzPartitioned(t *testing.T) {
	crashFuzzStore(t, Options{ArenaSize: 64 << 20, ChunkSize: 1 << 13, Shards: 2, Partitions: 4}, nil)
}

func crashFuzzStore(t *testing.T, opts Options, hash func([]byte) uint64) {
	for trial := int64(0); trial < 15; trial++ {
		s, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		if hash != nil {
			s.hash = hash
		}
		rng := rand.New(rand.NewSource(trial))
		const ops = 250
		crashPhase := rng.Intn(ops * 6)

		committed := map[string]string{}
		var before, after map[string]string
		var imgs [][]uint64
		phase := 0
		var inflight func(m map[string]string)

		arenas := s.Arenas()
		snap := func() {
			if imgs != nil || phase != crashPhase {
				phase++
				return
			}
			phase++
			// Power loss hits every partition at once: capture the whole
			// arena set, not just the one holding the in-flight persist.
			imgs = make([][]uint64, len(arenas))
			for i, a := range arenas {
				imgs[i] = a.CrashImage(rng, 0.4)
			}
			before = map[string]string{}
			for k, v := range committed {
				before[k] = v
			}
			after = map[string]string{}
			for k, v := range committed {
				after[k] = v
			}
			if inflight != nil {
				inflight(after)
			}
		}
		for _, a := range arenas {
			a.SetHooks(&pmem.Hooks{
				BeforePersist: func(_, _ uint64) { snap() },
				AfterPersist:  func(_, _ uint64) { snap() },
			})
		}

		for i := 0; i < ops; i++ {
			k := fmt.Sprintf("key-%d", rng.Intn(60))
			v := fmt.Sprintf("val-%d-%d", trial, i)
			if rng.Intn(4) == 3 {
				if _, ok := committed[k]; !ok {
					inflight = nil
					continue
				}
				inflight = func(m map[string]string) { delete(m, k) }
				if err := s.Delete([]byte(k)); err != nil {
					t.Fatal(err)
				}
				delete(committed, k)
			} else {
				inflight = func(m map[string]string) { m[k] = v }
				if err := s.Put([]byte(k), []byte(v)); err != nil {
					t.Fatal(err)
				}
				committed[k] = v
			}
		}
		for _, a := range arenas {
			a.SetHooks(nil)
		}
		if imgs == nil {
			imgs = s.Snapshot()
			before, after = committed, committed
		}

		// opts.ChunkSize deliberately not forwarded: v3 recovery reads the
		// geometry from the persisted superblocks.
		s2, err := Open(imgs, Options{})
		if err != nil {
			t.Fatalf("trial %d: open: %v", trial, err)
		}
		if hash != nil {
			s2.hash = hash
		}
		got := map[string]string{}
		s2.Range(func(k, v []byte) bool {
			got[string(k)] = string(v)
			return true
		})
		if !strMapsEqual(got, before) && !strMapsEqual(got, after) {
			t.Fatalf("trial %d: recovered store matches neither model (got %d keys, before %d, after %d)",
				trial, len(got), len(before), len(after))
		}
		// Recovered store accepts new writes.
		if err := s2.Put([]byte("post"), []byte("crash")); err != nil {
			t.Fatalf("trial %d: post-crash put: %v", trial, err)
		}
	}
}

func strMapsEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
