module rntree

go 1.22
