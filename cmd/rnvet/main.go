// Command rnvet is the repository's invariant checker: a multichecker over
// the internal/analysis pass suite that machine-checks the NVM-persistence,
// HTM-safety and cross-package concurrency rules the paper's designs depend
// on (persistcheck, htmsafe, lockflush, fencecheck, undolog, atomicfield,
// lockorder, spinblock — see DESIGN.md §11 and §16, or run `rnvet -list`).
//
// Usage:
//
//	rnvet [-passes atomicfield,lockorder,spinblock] [packages...]
//
// Packages default to ./... and accept any `go list` pattern. rnvet exits 1
// when any diagnostic survives the annotation filters, 2 on load failure —
// so `make lint` gates every PR on a clean run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rntree/internal/analysis"
)

func main() {
	passNames := flag.String("passes", "", "comma-separated subset of passes to run (default: all)")
	listPasses := flag.Bool("list", false, "list the available passes and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: rnvet [flags] [packages...]\n\nPasses:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listPasses {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *passNames != "" {
		var err error
		analyzers, err = analysis.ByName(*passNames)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rnvet:", err)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, err := analysis.Load("", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rnvet:", err)
		os.Exit(2)
	}

	diags := analysis.Run(prog, analyzers)
	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		fmt.Printf("%s: [%s] %s\n", pos, d.Pass, d.Message)
	}
	if len(diags) > 0 {
		names := make([]string, len(analyzers))
		for i, a := range analyzers {
			names[i] = a.Name
		}
		fmt.Fprintf(os.Stderr, "rnvet: %d finding(s) from %s\n", len(diags), strings.Join(names, ","))
		os.Exit(1)
	}
}
