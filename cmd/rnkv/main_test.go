package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

func runScript(t *testing.T, script string) string {
	t.Helper()
	var out strings.Builder
	if err := run(strings.NewReader(script), &out, nil); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestShellPutGetDelScan(t *testing.T) {
	out := runScript(t, `
put 1 100
put 2 200
put 3 300
get 2
del 2
get 2
scan 0 10
quit
`)
	for _, want := range []string{"ok", "200", "(not found)", "1 = 100", "3 = 300"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "2 = 200") {
		t.Fatalf("deleted key still scanned:\n%s", out)
	}
}

func TestShellCrashRecover(t *testing.T) {
	out := runScript(t, `
put 7 70
put 8 80
crash 0.5
get 7
get 8
quit
`)
	if !strings.Contains(out, "crash-recovered: 2 records survived") {
		t.Fatalf("crash recovery summary missing:\n%s", out)
	}
	if !strings.Contains(out, "70") || !strings.Contains(out, "80") {
		t.Fatalf("values lost across crash:\n%s", out)
	}
}

func TestShellCheckpoint(t *testing.T) {
	out := runScript(t, `
put 1 1
checkpoint
get 1
quit
`)
	if !strings.Contains(out, "reconstruction: 1 records") {
		t.Fatalf("checkpoint summary missing:\n%s", out)
	}
}

func TestShellStatsAndErrors(t *testing.T) {
	out := runScript(t, `
put 1 1
stats
del 99
put
bogus
help
quit
`)
	for _, want := range []string{"persists=", "htm: commits=", "error:", "usage: put", "unknown command", "commands:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// A SIGINT mid-session must take the clean-shutdown path: checkpoint the
// tree and confirm it reopens by reconstruction.
func TestShellSignalCleanShutdown(t *testing.T) {
	inR, inW := io.Pipe()
	outR, outW := io.Pipe()
	defer inW.Close()
	sig := make(chan os.Signal, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(inR, outW, sig)
		outW.Close()
	}()
	// Write from a goroutine: the shell blocks on its banner write until
	// this test starts reading the output pipe.
	go io.WriteString(inW, "put 1 100\nput 2 200\n")
	// Wait until both puts are acknowledged so the signal arrives while
	// the shell is idle at its prompt.
	br := bufio.NewReader(outR)
	for oks := 0; oks < 2; {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("waiting for acks: %v", err)
		}
		if strings.Contains(line, "ok") {
			oks++
		}
	}
	sig <- os.Interrupt
	rest, err := io.ReadAll(br)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(string(rest), "clean shutdown, 2 records checkpointed (reconstructed, not crash-recovered)") {
		t.Fatalf("clean-shutdown summary missing:\n%s", rest)
	}
}

// A signal during a long scan must interrupt the scan — not wait for it to
// finish — and then take the same clean-checkpoint path. The output pipe is
// read one row at a time so the scan is provably mid-flight when the signal
// lands.
func TestShellSignalInterruptsScan(t *testing.T) {
	const keys = 400
	var script strings.Builder
	for i := 1; i <= keys; i++ {
		fmt.Fprintf(&script, "put %d %d\n", i, i*10)
	}
	script.WriteString("scan 0 500\n")

	inR, inW := io.Pipe()
	outR, outW := io.Pipe()
	defer inW.Close()
	sig := make(chan os.Signal, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(inR, outW, sig)
		outW.Close()
	}()
	go io.WriteString(inW, script.String())

	// Consume acks, then a handful of scan rows — the scan's writer is now
	// blocked on this pipe, mid-scan by construction.
	br := bufio.NewReader(outR)
	rows := 0
	for rows < 5 {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("waiting for scan rows: %v", err)
		}
		if strings.Contains(line, " = ") {
			rows++
		}
	}
	sig <- os.Interrupt
	// Wait for the drain watcher to consume the signal (the flag store
	// follows immediately); only then resume reading so the very next
	// callback poll observes it.
	for len(sig) > 0 {
		runtime.Gosched()
	}
	time.Sleep(10 * time.Millisecond)

	rest, err := io.ReadAll(br)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("run: %v", err)
	}
	out := string(rest)
	if !strings.Contains(out, "(scan interrupted by signal)") {
		t.Fatalf("scan was not interrupted:\n...%s", tail(out, 400))
	}
	if got := strings.Count(out, " = "); got > keys-10 {
		t.Fatalf("scan printed %d rows after the signal; not truncated", got)
	}
	if !strings.Contains(out, "clean shutdown") || !strings.Contains(out, "reconstructed, not crash-recovered") {
		t.Fatalf("interrupted scan skipped the clean checkpoint path:\n...%s", tail(out, 400))
	}
	if !strings.Contains(out, fmt.Sprintf("%d records checkpointed", keys)) {
		t.Fatalf("checkpoint lost records:\n...%s", tail(out, 400))
	}
}

func tail(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[len(s)-n:]
}
