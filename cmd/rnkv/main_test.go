package main

import (
	"strings"
	"testing"
)

func runScript(t *testing.T, script string) string {
	t.Helper()
	var out strings.Builder
	if err := run(strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestShellPutGetDelScan(t *testing.T) {
	out := runScript(t, `
put 1 100
put 2 200
put 3 300
get 2
del 2
get 2
scan 0 10
quit
`)
	for _, want := range []string{"ok", "200", "(not found)", "1 = 100", "3 = 300"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "2 = 200") {
		t.Fatalf("deleted key still scanned:\n%s", out)
	}
}

func TestShellCrashRecover(t *testing.T) {
	out := runScript(t, `
put 7 70
put 8 80
crash 0.5
get 7
get 8
quit
`)
	if !strings.Contains(out, "crash-recovered: 2 records survived") {
		t.Fatalf("crash recovery summary missing:\n%s", out)
	}
	if !strings.Contains(out, "70") || !strings.Contains(out, "80") {
		t.Fatalf("values lost across crash:\n%s", out)
	}
}

func TestShellCheckpoint(t *testing.T) {
	out := runScript(t, `
put 1 1
checkpoint
get 1
quit
`)
	if !strings.Contains(out, "reconstruction: 1 records") {
		t.Fatalf("checkpoint summary missing:\n%s", out)
	}
}

func TestShellStatsAndErrors(t *testing.T) {
	out := runScript(t, `
put 1 1
stats
del 99
put
bogus
help
quit
`)
	for _, want := range []string{"persists=", "htm: commits=", "error:", "usage: put", "unknown command", "commands:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
