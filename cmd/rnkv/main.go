// Command rnkv is a small interactive durable key-value shell on top of
// RNTree, demonstrating the library's durability story end to end: mutate
// the tree, pull the power plug (crash), recover, and check what survived.
//
// Commands:
//
//	put <key> <value>     insert or update
//	get <key>             lookup
//	del <key>             remove
//	scan <start> <n>      range query
//	stats                 persistence / HTM counters and tree shape
//	crash [evictProb]     simulated power loss + crash recovery
//	checkpoint            clean shutdown + fast reconstruction
//	quit
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"rntree"
	"rntree/internal/drain"
)

func main() {
	// A SIGINT/SIGTERM mid-session takes the clean Close() path instead of
	// dying with an uncertified image: the next open of the checkpoint
	// reconstructs instead of running crash recovery.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Stdin, os.Stdout, sig); err != nil {
		fmt.Fprintf(os.Stderr, "rnkv: %v\n", err)
		os.Exit(1)
	}
}

// run drives the shell over the given streams; split out for testing. A
// value on sig (may be nil) triggers the clean-shutdown path — including
// mid-scan: the scan callback polls the drain watcher so a signal cuts a
// long range query short instead of waiting for it to finish.
func run(in io.Reader, out io.Writer, sig <-chan os.Signal) error {
	w := drain.New(sig)
	// Four partitions: the shell runs on a forest, so crash/recover and
	// stats exercise the multi-arena paths end to end.
	opts := rntree.Options{DualSlotArray: true, Partitions: 4, Seed: 1}
	t, err := rntree.New(opts)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "rnkv: RNTree-backed KV shell (type 'help')")

	// Feed input lines through a channel so the prompt loop can also wait
	// on signals. The done guard keeps the reader goroutine from leaking
	// when run returns while it holds an unconsumed line.
	lines := make(chan string)
	done := make(chan struct{})
	defer close(done)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(in)
		for sc.Scan() {
			select {
			case lines <- sc.Text():
			case <-done:
				return
			}
		}
	}()

	for {
		fmt.Fprint(out, "> ")
		var line string
		select {
		case <-w.Done():
			return shutdown(t, opts, out)
		case l, ok := <-lines:
			if !ok {
				return nil
			}
			line = l
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "put":
			k, v, ok := twoInts(fields)
			if !ok {
				fmt.Fprintln(out, "usage: put <key> <value>")
				continue
			}
			if err := t.Upsert(k, v); err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprintln(out, "ok")
		case "get":
			k, ok := oneInt(fields)
			if !ok {
				fmt.Fprintln(out, "usage: get <key>")
				continue
			}
			if v, found := t.Find(k); found {
				fmt.Fprintln(out, v)
			} else {
				fmt.Fprintln(out, "(not found)")
			}
		case "del":
			k, ok := oneInt(fields)
			if !ok {
				fmt.Fprintln(out, "usage: del <key>")
				continue
			}
			if err := t.Remove(k); err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprintln(out, "ok")
		case "scan":
			k, n, ok := twoInts(fields)
			if !ok {
				fmt.Fprintln(out, "usage: scan <start> <n>")
				continue
			}
			interrupted := false
			t.Scan(k, int(n), func(key, val uint64) bool {
				if w.Triggered() {
					interrupted = true
					return false
				}
				fmt.Fprintf(out, "  %d = %d\n", key, val)
				return true
			})
			if interrupted {
				fmt.Fprintln(out, "  (scan interrupted by signal)")
				return shutdown(t, opts, out)
			}
		case "stats":
			s := t.Stats()
			fmt.Fprintf(out, "partitions=%d persists=%d linesFlushed=%d words=%d leaves=%d depth=%d readRetries=%d\n",
				s.Partitions, s.Persists, s.LinesFlushed, s.WordsWritten, s.Leaves, s.Depth, s.ReadRetries)
			fmt.Fprintf(out, "htm: commits=%d conflicts=%d capacity=%d persistAborts=%d fallbacks=%d\n",
				s.HTM.Commits, s.HTM.ConflictAborts, s.HTM.CapacityAborts, s.HTM.PersistAborts, s.HTM.Fallbacks)
		case "crash":
			p := 0.5
			if len(fields) > 1 {
				if f, err := strconv.ParseFloat(fields[1], 64); err == nil {
					p = f
				}
			}
			snap := t.Crash(p)
			nt, err := rntree.Recover(snap, opts)
			if err != nil {
				fmt.Fprintln(out, "recovery failed:", err)
				continue
			}
			t = nt
			fmt.Fprintf(out, "power lost (evictProb=%.2f); crash-recovered: %d records survived\n", p, t.Len())
		case "checkpoint":
			snap := t.Checkpoint()
			nt, err := rntree.Recover(snap, opts)
			if err != nil {
				fmt.Fprintln(out, "recovery failed:", err)
				continue
			}
			t = nt
			fmt.Fprintf(out, "clean shutdown + reconstruction: %d records\n", t.Len())
		case "help":
			fmt.Fprintln(out, "commands: put get del scan stats crash checkpoint quit")
		case "quit", "exit":
			return nil
		default:
			fmt.Fprintln(out, "unknown command (try 'help')")
		}
	}
}

// shutdown is the signal path: checkpoint (clean Close + snapshot) and
// verify the snapshot reopens via the fast reconstruction path before
// exiting, so an interrupted session never leaves crash recovery as the
// only way back in.
func shutdown(t *rntree.Tree, opts rntree.Options, out io.Writer) error {
	snap := t.Checkpoint()
	t2, err := rntree.Recover(snap, opts)
	if err != nil {
		return fmt.Errorf("clean shutdown: checkpoint did not reopen: %v", err)
	}
	fmt.Fprintf(out, "\nsignal: clean shutdown, %d records checkpointed (reconstructed, not crash-recovered)\n", t2.Len())
	return nil
}

func oneInt(f []string) (uint64, bool) {
	if len(f) != 2 {
		return 0, false
	}
	v, err := strconv.ParseUint(f[1], 10, 63)
	return v, err == nil
}

func twoInts(f []string) (uint64, uint64, bool) {
	if len(f) != 3 {
		return 0, 0, false
	}
	a, err1 := strconv.ParseUint(f[1], 10, 63)
	b, err2 := strconv.ParseUint(f[2], 10, 63)
	return a, b, err1 == nil && err2 == nil
}
