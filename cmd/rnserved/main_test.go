package main

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"rntree/client"
	"rntree/internal/drain"
)

func TestParseFlags(t *testing.T) {
	c, err := parseFlags([]string{"-addr", "127.0.0.1:9999", "-partitions", "2", "-batch", "-arena-mb", "64", "-cache", "-cache-entries", "1024"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if c.addr != "127.0.0.1:9999" || c.partitions != 2 || !c.batch || c.arenaMB != 64 {
		t.Fatalf("parsed config = %+v", c)
	}
	if !c.cache || c.cacheEntries != 1024 {
		t.Fatalf("cache flags not parsed: %+v", c)
	}
	if _, err := parseFlags([]string{"-no-such-flag"}, io.Discard); err == nil {
		t.Fatal("bad flag accepted")
	}
	c, err = parseFlags([]string{"-obj", "-obj-expire-interval", "250ms", "-cache-two-touch"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !c.obj || c.objExpireEvery != 250*time.Millisecond || !c.cacheTwoTouch {
		t.Fatalf("obj/cache flags not parsed: %+v", c)
	}
}

// TestServeObjVerbs starts the binary path with -obj and drives a typed
// object plus a TTL through the wire, then takes the clean shutdown path.
func TestServeObjVerbs(t *testing.T) {
	cfg, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-arena-mb", "64", "-partitions", "2", "-obj", "-obj-expire-interval", "50ms"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	w := drain.New(nil)
	outR, outW := io.Pipe()
	errc := make(chan error, 1)
	go func() {
		errc <- serve(cfg, w, outW)
		outW.Close()
	}()

	br := bufio.NewReader(outR)
	banner, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("no banner: %v", err)
	}
	if !strings.Contains(banner, "obj=true") {
		t.Fatalf("banner does not advertise the object layer: %q", banner)
	}
	addr := strings.Fields(banner)[3]

	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	defer c.Close()
	if err := c.HSet([]byte("user:1"), []byte("name"), []byte("ada")); err != nil {
		t.Fatalf("HSet: %v", err)
	}
	if v, err := c.HGet([]byte("user:1"), []byte("name")); err != nil || string(v) != "ada" {
		t.Fatalf("HGet = %q, %v", v, err)
	}
	if err := c.Expire([]byte("user:1"), 60_000); err != nil {
		t.Fatalf("Expire: %v", err)
	}
	if ttl, err := c.TTL([]byte("user:1")); err != nil || ttl <= 0 {
		t.Fatalf("TTL = %d, %v", ttl, err)
	}

	w.Trigger()
	rest, err := io.ReadAll(br)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not return after drain trigger")
	}
	if !strings.Contains(string(rest), "clean shutdown") {
		t.Fatalf("clean-shutdown summary missing:\n%s", rest)
	}
}

// TestServeSignalCleanShutdown is the end-to-end binary path: start,
// serve real client traffic, deliver the drain trigger (the signal path),
// and require the clean checkpoint + verified reopen.
func TestServeSignalCleanShutdown(t *testing.T) {
	for _, batch := range []bool{false, true} {
		name := "unbatched"
		if batch {
			name = "batched"
		}
		t.Run(name, func(t *testing.T) {
			cfg, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-arena-mb", "64", "-partitions", "2"}, io.Discard)
			if err != nil {
				t.Fatal(err)
			}
			cfg.batch = batch
			// The batched variant also fronts GETs with the hot-key cache,
			// so the end-to-end path covers both server-side subsystems.
			cfg.cache = batch

			w := drain.New(nil)
			outR, outW := io.Pipe()
			errc := make(chan error, 1)
			go func() {
				errc <- serve(cfg, w, outW)
				outW.Close()
			}()

			br := bufio.NewReader(outR)
			banner, err := br.ReadString('\n')
			if err != nil {
				t.Fatalf("no banner: %v", err)
			}
			// "rnserved: serving on 127.0.0.1:PORT (...)"
			fields := strings.Fields(banner)
			if len(fields) < 4 {
				t.Fatalf("unparseable banner: %q", banner)
			}
			addr := fields[3]

			c, err := client.Dial(addr, client.Options{})
			if err != nil {
				t.Fatalf("dial %s: %v", addr, err)
			}
			defer c.Close()
			const n = 50
			for i := 0; i < n; i++ {
				if err := c.Put([]byte(fmt.Sprintf("key-%d", i)), []byte("v")); err != nil {
					t.Fatalf("Put: %v", err)
				}
			}
			stats, err := c.Stats()
			if err != nil || stats["live_keys"] != n {
				t.Fatalf("stats = %v, %v", stats, err)
			}

			w.Trigger()
			rest, err := io.ReadAll(br)
			if err != nil {
				t.Fatal(err)
			}
			select {
			case err := <-errc:
				if err != nil {
					t.Fatalf("serve: %v", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("serve did not return after drain trigger")
			}
			out := string(rest)
			if !strings.Contains(out, "signal received, draining") {
				t.Fatalf("drain message missing:\n%s", out)
			}
			want := fmt.Sprintf("clean shutdown, %d live keys checkpointed (reconstructed, not crash-recovered)", n)
			if !strings.Contains(out, want) {
				t.Fatalf("clean-shutdown summary missing (want %q):\n%s", want, out)
			}
		})
	}
}
