// Command rnserved serves the RNTree partitioned kv store over TCP with
// the pipelined binary protocol in internal/wire. It is the network face
// of the durability story: every acknowledged PUT is persisted (value-log
// record flushed and fenced) before the response frame leaves the box, and
// a SIGINT/SIGTERM drains in-flight requests, checkpoints the store, and
// verifies the checkpoint reopens via the fast reconstruction path before
// exiting — the same contract the rnkv shell makes, at network scale.
//
// Usage:
//
//	rnserved [-addr :4410] [-partitions 4] [-arena-mb 512] [-dualslot]
//	         [-batch] [-batch-max 64] [-batch-delay 200us]
//	         [-cache] [-cache-entries 65536] [-cache-two-touch]
//	         [-obj] [-obj-expire-interval 1s]
//	         [-repl] [-replica-of addr] [-repl-durable-timeout 5s] [-repl-fence-lease 0]
//	         [-max-conns 256] [-max-inflight 64] [-max-global 1024]
//	         [-idle-timeout 2m] [-flush-ns 0] [-fence-ns 0]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rntree/internal/drain"
	"rntree/internal/obj"
	"rntree/internal/pmem"
	"rntree/internal/repl"
	"rntree/internal/server"
	"rntree/kv"
)

// config is the parsed flag set, separated from flag.Parse for testing.
type config struct {
	addr       string
	partitions int
	arenaMB    uint64
	dualslot   bool

	batch      bool
	batchMax   int
	batchDelay time.Duration

	cache         bool
	cacheEntries  int
	cacheTwoTouch bool

	obj            bool
	objExpireEvery time.Duration

	repl             bool
	replicaOf        string
	replAckEvery     int
	replAckInterval  time.Duration
	replDurableTmout time.Duration
	replFenceLease   time.Duration

	maxConns    int
	maxInflight int
	maxGlobal   int
	idleTimeout time.Duration

	flushNs, fenceNs int64

	drainTimeout time.Duration
}

func parseFlags(args []string, errw io.Writer) (config, error) {
	fs := flag.NewFlagSet("rnserved", flag.ContinueOnError)
	fs.SetOutput(errw)
	var c config
	fs.StringVar(&c.addr, "addr", ":4410", "listen address")
	fs.IntVar(&c.partitions, "partitions", 4, "hash partitions (power of two)")
	fs.Uint64Var(&c.arenaMB, "arena-mb", 512, "total simulated NVM capacity in MiB")
	fs.BoolVar(&c.dualslot, "dualslot", true, "use the RNTree+DS index variant")
	fs.BoolVar(&c.batch, "batch", false, "coalesce PUTs across connections to amortize persist fences")
	fs.IntVar(&c.batchMax, "batch-max", 64, "max PUTs per coalesced batch")
	fs.DurationVar(&c.batchDelay, "batch-delay", 200*time.Microsecond, "max time a PUT waits for batch-mates")
	fs.BoolVar(&c.cache, "cache", false, "front GETs with the epoch-validated DRAM hot-key cache")
	fs.IntVar(&c.cacheEntries, "cache-entries", 65536, "hot-key cache capacity (size to the GET working set; an undersized cache thrashes)")
	fs.BoolVar(&c.cacheTwoTouch, "cache-two-touch", false, "admit a key into the hot-key cache only on its second touch within an epoch window (scan-resistant)")
	fs.BoolVar(&c.obj, "obj", false, "enable typed objects (HSET/SADD/EXPIRE verb family) on the reserved 0x01 namespace")
	fs.DurationVar(&c.objExpireEvery, "obj-expire-interval", time.Second, "background TTL expirer cadence (requires -obj; 0 leaves reaping to lazy reads)")
	fs.BoolVar(&c.repl, "repl", false, "enable replication (serve as primary; replicas may subscribe)")
	fs.StringVar(&c.replicaOf, "replica-of", "", "run as a replica of the primary at this address (implies -repl)")
	fs.IntVar(&c.replAckEvery, "repl-ack-every", 32, "replica acks after this many applied records")
	fs.DurationVar(&c.replAckInterval, "repl-ack-interval", 20*time.Millisecond, "replica ack flush interval")
	fs.DurationVar(&c.replDurableTmout, "repl-durable-timeout", 5*time.Second, "max wait for replica durability on a durable PUT")
	fs.DurationVar(&c.replFenceLease, "repl-fence-lease", 0, "fence writes (read-only) after all replicas have been gone this long; 0 disables")
	fs.IntVar(&c.maxConns, "max-conns", 256, "max concurrent connections")
	fs.IntVar(&c.maxInflight, "max-inflight", 64, "max pipelined requests per connection")
	fs.IntVar(&c.maxGlobal, "max-global", 1024, "max in-flight requests across all connections (excess rejected)")
	fs.DurationVar(&c.idleTimeout, "idle-timeout", 2*time.Minute, "reap connections idle this long")
	fs.Int64Var(&c.flushNs, "flush-ns", 0, "simulated per-line flush latency (ns)")
	fs.Int64Var(&c.fenceNs, "fence-ns", 0, "simulated per-persist fence latency (ns)")
	fs.DurationVar(&c.drainTimeout, "drain-timeout", 30*time.Second, "max time to wait for in-flight requests on shutdown")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	return c, nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		os.Exit(2)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if err := serve(cfg, drain.New(sig), os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "rnserved: %v\n", err)
		os.Exit(1)
	}
}

// serve runs the store + server until the drain watcher trips, then takes
// the clean shutdown path: drain connections, checkpoint, verify the
// checkpoint reopens. Split from main for testing.
// minCacheEntries is the floor the -cache-entries flag is clamped to.
// Below it the hot-key cache thrashes: entries are evicted before their
// epoch validation ever pays off, so every GET does the cache bookkeeping
// and still walks the tree — measurably slower than -cache=false.
const minCacheEntries = 4096

func serve(cfg config, w *drain.Watcher, out io.Writer) error {
	if cfg.cache && cfg.cacheEntries < minCacheEntries {
		fmt.Fprintf(out, "rnserved: -cache-entries %d is below the useful floor; clamping to %d (an undersized cache is slower than no cache)\n",
			cfg.cacheEntries, minCacheEntries)
		cfg.cacheEntries = minCacheEntries
	}
	st, err := kv.New(kv.Options{
		ArenaSize:     cfg.arenaMB << 20,
		Partitions:    cfg.partitions,
		DualSlotArray: cfg.dualslot,
		FlushLatency: pmem.LatencyModel{
			FlushPerLine: time.Duration(cfg.flushNs),
			Fence:        time.Duration(cfg.fenceNs),
		},
	})
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}

	// Replication: -replica-of makes this node a replica pulling from the
	// named primary; -repl alone makes it a primary replicas can subscribe
	// to. Either way the persisted role wins over the flags on reopen, so a
	// promoted replica restarted with its old flags stays primary.
	var node *repl.Node
	if cfg.repl || cfg.replicaOf != "" {
		role := uint8(repl.Primary)
		if cfg.replicaOf != "" {
			role = repl.Replica
		}
		node, err = repl.NewNode(st, role)
		if err != nil {
			return fmt.Errorf("repl: %w", err)
		}
		if node.Role() == repl.Replica && cfg.replicaOf != "" {
			go func() {
				if err := node.RunApplier(repl.ApplierConfig{
					Addr:        cfg.replicaOf,
					AckEvery:    cfg.replAckEvery,
					AckInterval: cfg.replAckInterval,
				}); err != nil {
					fmt.Fprintf(os.Stderr, "rnserved: applier: %v\n", err)
				}
			}()
		}
	}

	// Typed objects: the layer attaches read-only on a replica (expired keys
	// are masked but never reaped; the primary's stream resolves intents) and
	// is flipped to primary mode by a PROMOTE. The server wires the cache
	// invalidation and replication apply hooks itself.
	var ost *obj.Store
	if cfg.obj {
		ost, err = obj.Attach(st, obj.Options{
			ExpireInterval: cfg.objExpireEvery,
			ReadOnly:       node != nil && node.Role() == repl.Replica,
		})
		if err != nil {
			return fmt.Errorf("obj: %w", err)
		}
	}

	srv := server.New(st, server.Config{
		MaxConns:          cfg.maxConns,
		MaxInflight:       cfg.maxInflight,
		MaxGlobalInflight: cfg.maxGlobal,
		IdleTimeout:       cfg.idleTimeout,
		Batch: server.BatchConfig{
			Puts:     cfg.batch,
			MaxBatch: cfg.batchMax,
			MaxDelay: cfg.batchDelay,
		},
		Cache: server.CacheConfig{
			Enable:     cfg.cache,
			MaxEntries: cfg.cacheEntries,
			TwoTouch:   cfg.cacheTwoTouch,
		},
		Obj:                ost,
		Repl:               node,
		ReplDurableTimeout: cfg.replDurableTmout,
		ReplFenceLease:     cfg.replFenceLease,
	})

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	replDesc := "off"
	if node != nil {
		replDesc = fmt.Sprintf("role=%d epoch=%d", node.Role(), node.Epoch())
	}
	fmt.Fprintf(out, "rnserved: serving on %s (partitions=%d arena=%dMiB batch=%v cache=%v obj=%v repl=%s)\n",
		ln.Addr(), cfg.partitions, cfg.arenaMB, cfg.batch, cfg.cache, cfg.obj, replDesc)

	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	select {
	case <-w.Done():
	case err := <-serveDone:
		// Listener died without a drain trigger: real failure.
		return fmt.Errorf("serve: %w", err)
	}

	fmt.Fprintln(out, "rnserved: signal received, draining")
	ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-serveDone; err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if node != nil {
		node.Close()
	}
	if ost != nil {
		// Stop the background expirer before checkpointing so no reap
		// commits race the quiesced image.
		ost.Close()
	}

	// The drain guaranteed quiescence, so the clean checkpoint path must
	// succeed; verifying the reopen here means an interrupted server never
	// leaves crash recovery as the only way back in.
	imgs, err := st.Checkpoint()
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	st2, err := kv.Open(imgs, kv.Options{})
	if err != nil {
		return fmt.Errorf("checkpoint did not reopen: %w", err)
	}
	fmt.Fprintf(out, "rnserved: clean shutdown, %d live keys checkpointed (reconstructed, not crash-recovered)\n",
		st2.Stats().LiveKeys)
	return nil
}
