// Command rnbench regenerates the tables and figures of "Building Scalable
// NVM-based B+tree with HTM" (ICPP'19) on the simulated-NVM substrate.
//
// Usage:
//
//	rnbench -exp fig8 -scale 200000 -duration 300ms
//	rnbench -exp all -scale 1000000 -out results.txt
//
// Experiments: table1, fig4, fig5, fig6, fig7, fig8, fig9, fig10, kvscale
// (beyond the paper: kv-layer Put thread sweep, sharded vs single value
// log), forestscale (partition sweep of the hash-partitioned forest; also
// writes a machine-readable BENCH_forest.json, see -forest-json),
// heapgrow (kv Put throughput across live heap segment appends; merges a
// heap_grow section into BENCH_forest.json), faultmatrix (crash-point exploration with the durability oracle;
// -fault-sites caps the sites replayed per target), netbench (loopback
// serving-layer sweep over connections x pipeline depth; also writes
// BENCH_server.json, see -server-json), replbench (primary/replica
// replication: async vs replica-durable PUT throughput, failover time,
// and the two-node crash matrix; merges a repl_failover section into
// BENCH_server.json), objbench (typed-object layer: flat PUT baseline vs
// each object verb and the composite mix at 8 threads; merges an obj_ops
// section into BENCH_server.json), all.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"rntree/internal/bench"
	"rntree/internal/pmem"
)

// forestReport is the machine-readable summary of the forest-layer
// experiments, written to -forest-json so CI can gate on the speedup bar
// without scraping the text tables. The top-level fields are the
// forestscale partition sweep; HeapGrow is the heapgrow segment-append
// sweep. Either experiment can run alone: the writer merges its section
// into whatever the file already holds.
type forestReport struct {
	ID         string     `json:"id"`
	Title      string     `json:"title"`
	Scale      uint64     `json:"scale"`
	DurationMS int64      `json:"duration_ms"`
	Seed       int64      `json:"seed"`
	Header     []string   `json:"header"`
	Rows       [][]string `json:"rows"`
	Notes      []string   `json:"notes"`
	// SpeedupVs1P is the last sweep point's throughput over the
	// single-partition baseline; PassedBar is SpeedupVs1P >= 1.5.
	SpeedupVs1P float64 `json:"speedup_vs_1p"`
	PassedBar   bool    `json:"passed_1_5x_bar"`

	HeapGrow *heapGrowReport `json:"heap_grow,omitempty"`
}

// heapGrowReport is the heapgrow section: kv Put throughput in fixed-size
// operation windows while the partition heap appends segments under load.
type heapGrowReport struct {
	Title  string     `json:"title"`
	Seed   int64      `json:"seed"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes"`
	// GrowthVsSteady is the median growth-window throughput over the
	// median steady-state window; PassedBar is GrowthVsSteady >= 0.8
	// (growth windows hold at least 80% of steady-state throughput).
	GrowthVsSteady float64 `json:"growth_vs_steady"`
	PassedBar      bool    `json:"passed_80pct_bar"`
}

// writeForestJSON merges one forest-layer result (forestscale or
// heapgrow) into the report at path, preserving the other section if a
// previous run already wrote it.
func writeForestJSON(path string, cfg bench.Config, r bench.Result) error {
	var rep forestReport
	if prev, err := os.ReadFile(path); err == nil {
		// Best-effort: an unreadable or stale-format file is overwritten.
		_ = json.Unmarshal(prev, &rep)
	}
	switch r.ID {
	case "forestscale":
		rep.ID = r.ID
		rep.Title = r.Title
		rep.Scale = cfg.Scale
		rep.DurationMS = cfg.Duration.Milliseconds()
		rep.Seed = cfg.Seed
		rep.Header, rep.Rows, rep.Notes = r.Header, r.Rows, r.Notes
		if n := len(r.Rows); n > 0 && len(r.Rows[n-1]) > 2 {
			if v, err := strconv.ParseFloat(r.Rows[n-1][2], 64); err == nil {
				rep.SpeedupVs1P = v
				rep.PassedBar = v >= 1.5
			}
		}
	case "heapgrow":
		hg := &heapGrowReport{
			Title: r.Title, Seed: cfg.Seed,
			Header: r.Header, Rows: r.Rows, Notes: r.Notes,
		}
		// The acceptance cell is the ratio note's leading "...is X.XXx"
		// figure; recompute it instead from the rows so the bar doesn't
		// depend on note phrasing: median kops of grew>0 rows over median
		// kops of grew==0 rows.
		var steady, growth []float64
		for _, row := range r.Rows {
			if len(row) < 4 {
				continue
			}
			v, err := strconv.ParseFloat(row[1], 64)
			if err != nil {
				continue
			}
			if row[3] != "0" {
				growth = append(growth, v)
			} else {
				steady = append(steady, v)
			}
		}
		if len(steady) > 0 && len(growth) > 0 {
			hg.GrowthVsSteady = medianOf(growth) / medianOf(steady)
			hg.PassedBar = hg.GrowthVsSteady >= 0.8
		}
		rep.HeapGrow = hg
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// medianOf returns the median of a non-empty sample.
func medianOf(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// serverReport is the machine-readable summary of the serving-layer
// experiments, written to -server-json so CI can gate on the pipelining
// speedup bar (and the cache's read-latency win) without scraping the
// text tables. The top-level fields are the netbench PUT sweep; GetSweep
// is the netgetbench GET-latency sweep. Either experiment can run alone:
// the writer merges its section into whatever the file already holds.
type serverReport struct {
	ID         string     `json:"id"`
	Title      string     `json:"title"`
	DurationMS int64      `json:"duration_ms"`
	Seed       int64      `json:"seed"`
	Header     []string   `json:"header"`
	Rows       [][]string `json:"rows"`
	Notes      []string   `json:"notes"`
	// SpeedupVs1x1 is the 8-connections x depth-16 throughput over the
	// 1-connection unpipelined baseline; PassedBar is SpeedupVs1x1 >= 4.
	SpeedupVs1x1 float64 `json:"speedup_vs_1x1"`
	PassedBar    bool    `json:"passed_4x_bar"`

	GetSweep *getSweepReport `json:"get_sweep,omitempty"`

	ReplFailover *replReport `json:"repl_failover,omitempty"`

	ObjOps *objOpsReport `json:"obj_ops,omitempty"`
}

// getSweepReport is the netgetbench section: zipf-0.8 GET p50/p99 with
// the hot-key cache off and on.
type getSweepReport struct {
	Title      string     `json:"title"`
	DurationMS int64      `json:"duration_ms"`
	Seed       int64      `json:"seed"`
	Header     []string   `json:"header"`
	Rows       [][]string `json:"rows"`
	Notes      []string   `json:"notes"`
	// P50SpeedupCached / P99SpeedupCached are the 4x16 shape's cache-off
	// latency over its cache-on latency; CachePassedBar requires the
	// cached p50 to beat uncached (ratio > 1).
	P50SpeedupCached float64 `json:"p50_speedup_cached"`
	P99SpeedupCached float64 `json:"p99_speedup_cached"`
	CachePassedBar   bool    `json:"cache_passed_bar"`
}

// replReport is the replbench section: replicated PUT throughput in both
// ack modes, the measured failover time, and the two-node crash matrix.
type replReport struct {
	Title      string     `json:"title"`
	DurationMS int64      `json:"duration_ms"`
	Seed       int64      `json:"seed"`
	Header     []string   `json:"header"`
	Rows       [][]string `json:"rows"`
	Notes      []string   `json:"notes"`
	// AsyncKops / DurableKops are the two throughput rows; FailoverMS is
	// the client-measured kill-to-first-successful-write time. Violations
	// sums the failover lost-write count and every crash-matrix row;
	// PassedBar requires it to be zero.
	AsyncKops   float64 `json:"async_kops"`
	DurableKops float64 `json:"durable_kops"`
	FailoverMS  float64 `json:"failover_ms"`
	Violations  int     `json:"violations"`
	PassedBar   bool    `json:"passed_zero_loss_bar"`
}

// objOpsReport is the objbench section: typed-object throughput (flat PUT
// baseline, each verb isolated, the composite mix) at 8 worker threads.
type objOpsReport struct {
	Title      string     `json:"title"`
	DurationMS int64      `json:"duration_ms"`
	Seed       int64      `json:"seed"`
	Header     []string   `json:"header"`
	Rows       [][]string `json:"rows"`
	Notes      []string   `json:"notes"`
	// CompositeVsFlat is the hset row's throughput over the flat-PUT row
	// (each hset is a full intent commit: intent + field + header records);
	// PassedBar is CompositeVsFlat >= 0.5.
	CompositeVsFlat float64 `json:"composite_vs_flat"`
	PassedBar       bool    `json:"passed_half_bar"`
}

// writeServerJSON merges one serving-layer result (netbench, netgetbench,
// replbench, or objbench) into the report at path, preserving the other
// sections if a previous run already wrote them.
func writeServerJSON(path string, cfg bench.Config, r bench.Result) error {
	var rep serverReport
	if prev, err := os.ReadFile(path); err == nil {
		// Best-effort: an unreadable or stale-format file is overwritten.
		_ = json.Unmarshal(prev, &rep)
	}
	switch r.ID {
	case "netbench":
		rep.ID = r.ID
		rep.Title = r.Title
		rep.DurationMS = cfg.Duration.Milliseconds()
		rep.Seed = cfg.Seed
		rep.Header, rep.Rows, rep.Notes = r.Header, r.Rows, r.Notes
		// The acceptance cell is the batched 8×16 row; its last column is
		// the throughput ratio against the (batched) 1×1 baseline row.
		for _, row := range r.Rows {
			if len(row) >= 8 && row[0] == "8" && row[1] == "16" && row[2] == "on" {
				if v, err := strconv.ParseFloat(row[7], 64); err == nil {
					rep.SpeedupVs1x1 = v
					rep.PassedBar = v >= 4.0
				}
			}
		}
	case "netgetbench":
		gs := &getSweepReport{
			Title:      r.Title,
			DurationMS: cfg.Duration.Milliseconds(),
			Seed:       cfg.Seed,
			Header:     r.Header, Rows: r.Rows, Notes: r.Notes,
		}
		// The acceptance cells are the 4×16 cache-on row's off/on latency
		// ratios (columns p50_vs_off, p99_vs_off).
		for _, row := range r.Rows {
			if len(row) >= 9 && row[0] == "4" && row[1] == "16" && row[2] == "on" {
				if v, err := strconv.ParseFloat(row[7], 64); err == nil {
					gs.P50SpeedupCached = v
				}
				if v, err := strconv.ParseFloat(row[8], 64); err == nil {
					gs.P99SpeedupCached = v
				}
				gs.CachePassedBar = gs.P50SpeedupCached > 1.0
			}
		}
		rep.GetSweep = gs
	case "replbench":
		rr := &replReport{
			Title:      r.Title,
			DurationMS: cfg.Duration.Milliseconds(),
			Seed:       cfg.Seed,
			Header:     r.Header, Rows: r.Rows, Notes: r.Notes,
		}
		// Columns: phase, kops, p50_us, p99_us, sites, violations, detail.
		// The failover row's p50_us is its single sample — the
		// kill-to-first-successful-write time.
		sawFailover := false
		for _, row := range r.Rows {
			if len(row) < 7 {
				continue
			}
			switch row[0] {
			case "put-async":
				if v, err := strconv.ParseFloat(row[1], 64); err == nil {
					rr.AsyncKops = v
				}
			case "put-durable":
				if v, err := strconv.ParseFloat(row[1], 64); err == nil {
					rr.DurableKops = v
				}
			case "failover":
				sawFailover = true
				if v, err := strconv.ParseFloat(row[2], 64); err == nil {
					rr.FailoverMS = v / 1e3
				}
			}
			if v, err := strconv.Atoi(row[5]); err == nil {
				rr.Violations += v
			}
		}
		rr.PassedBar = sawFailover && rr.Violations == 0
		rep.ReplFailover = rr
	case "objbench":
		oo := &objOpsReport{
			Title:      r.Title,
			DurationMS: cfg.Duration.Milliseconds(),
			Seed:       cfg.Seed,
			Header:     r.Header, Rows: r.Rows, Notes: r.Notes,
		}
		// Columns: op, kops, mean_us, p50_us, p99_us, vs_flat_put. The
		// acceptance cell is the hset row's ratio column.
		for _, row := range r.Rows {
			if len(row) >= 6 && row[0] == "hset" {
				if v, err := strconv.ParseFloat(row[5], 64); err == nil {
					oo.CompositeVsFlat = v
					oo.PassedBar = v >= 0.5
				}
			}
		}
		rep.ObjOps = oo
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id ("+strings.Join(bench.ExperimentIDs(), ", ")+" or all)")
		scale    = flag.Uint64("scale", 200_000, "warm-up records (paper: 16M)")
		duration = flag.Duration("duration", 300*time.Millisecond, "measurement window per data point")
		threads  = flag.String("threads", "1,2,4,8,16,24", "thread sweep for scalability experiments")
		flushNS  = flag.Int("flush-ns", 25, "simulated CLWB+drain latency per cache line (0 disables)")
		fenceNS  = flag.Int("fence-ns", 500, "simulated fence latency (0 disables)")
		seed     = flag.Int64("seed", 42, "workload seed")
		faultMax = flag.Int("fault-sites", 0, "faultmatrix: max crash sites replayed per target (0 = exhaustive)")
		fjson    = flag.String("forest-json", "BENCH_forest.json", "forestscale: write a machine-readable report to this file (empty disables)")
		sjson    = flag.String("server-json", "BENCH_server.json", "netbench/netgetbench/replbench: write a machine-readable report to this file (empty disables)")
		out      = flag.String("out", "", "also write results to this file")
		format   = flag.String("format", "table", "output format: table or csv")
	)
	flag.Parse()

	var th []int
	for _, s := range strings.Split(*threads, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "rnbench: bad -threads entry %q\n", s)
			os.Exit(2)
		}
		th = append(th, n)
	}
	cfg := bench.Config{
		Scale:    *scale,
		Duration: *duration,
		Threads:  th,
		Latency: pmem.LatencyModel{
			FlushPerLine: time.Duration(*flushNS) * time.Nanosecond,
			Fence:        time.Duration(*fenceNS) * time.Nanosecond,
		},
		Seed:          *seed,
		FaultMaxSites: *faultMax,
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rnbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	fmt.Fprintf(w, "rnbench: scale=%d duration=%v threads=%v flush=%dns fence=%dns GOMAXPROCS=%d\n\n",
		cfg.Scale, cfg.Duration, cfg.Threads, *flushNS, *fenceNS, runtime.GOMAXPROCS(0))

	failed := false
	run := func(id string) {
		f, ok := bench.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "rnbench: unknown experiment %q (have: %s)\n", id, strings.Join(bench.ExperimentIDs(), ", "))
			os.Exit(2)
		}
		t0 := time.Now()
		for _, r := range f(cfg) {
			if *format == "csv" {
				fmt.Fprintln(w, r.CSV())
			} else {
				fmt.Fprintln(w, r.String())
			}
			// The faultmatrix experiment marks durability-oracle failures
			// with a VIOLATION note; make them fail the run so `make
			// faultcheck` gates CI.
			for _, n := range r.Notes {
				if strings.Contains(n, "VIOLATION") || strings.Contains(n, "harness error") {
					failed = true
				}
			}
			if (r.ID == "forestscale" || r.ID == "heapgrow") && *fjson != "" {
				if err := writeForestJSON(*fjson, cfg, r); err != nil {
					fmt.Fprintf(os.Stderr, "rnbench: writing %s: %v\n", *fjson, err)
					failed = true
				} else {
					fmt.Fprintf(w, "(wrote %s)\n", *fjson)
				}
			}
			if (r.ID == "netbench" || r.ID == "netgetbench" || r.ID == "replbench" || r.ID == "objbench") && *sjson != "" {
				if err := writeServerJSON(*sjson, cfg, r); err != nil {
					fmt.Fprintf(os.Stderr, "rnbench: writing %s: %v\n", *sjson, err)
					failed = true
				} else {
					fmt.Fprintf(w, "(wrote %s)\n", *sjson)
				}
			}
		}
		fmt.Fprintf(w, "(%s took %v)\n\n", id, time.Since(t0).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, id := range bench.ExperimentIDs() {
			run(id)
		}
	} else {
		for _, id := range strings.Split(*exp, ",") {
			run(strings.TrimSpace(id))
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "rnbench: FAIL: durability violations found (see VIOLATION notes above)")
		os.Exit(1)
	}
}
