// YCSB example: drive the paper's headline concurrent workload (YCSB-A,
// 50% reads / 50% updates, Zipfian-skewed keys) against RNTree, RNTree+DS
// and FPTree and print a small scalability table — a miniature of
// Figure 8(b). Single-threaded baselines are shown at one thread for
// context.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"rntree/internal/bench"
	"rntree/internal/pmem"
	"rntree/internal/ycsb"
)

func main() {
	scale := flag.Uint64("scale", 100_000, "records to preload")
	dur := flag.Duration("duration", 200*time.Millisecond, "measurement window")
	zipf := flag.Float64("zipf", 0.8, "Zipfian coefficient (0 = uniform)")
	flag.Parse()

	cfg := bench.Config{
		Scale:    *scale,
		Duration: *dur,
		Latency:  pmem.DefaultLatency,
		Seed:     1,
	}

	var chooser ycsb.Chooser = ycsb.Uniform{N: *scale}
	if *zipf > 0 {
		chooser = ycsb.NewZipfian(*scale, *zipf)
	}
	w := ycsb.Workload{Mix: ycsb.A, Chooser: chooser}

	fmt.Printf("YCSB-A, %d records, zipf=%.2f, window=%v\n", *scale, *zipf, *dur)
	fmt.Printf("%-10s %8s %8s %8s %8s\n", "tree", "1 thr", "2 thr", "4 thr", "8 thr")
	for _, kind := range []bench.TreeKind{bench.KindFPTree, bench.KindRNTree, bench.KindRNTreeDS} {
		ix, _, err := bench.NewTree(kind, cfg, *scale)
		if err != nil {
			log.Fatal(err)
		}
		if err := bench.Warm(ix, kind, *scale); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s", kind)
		for _, th := range []int{1, 2, 4, 8} {
			m := bench.RunThroughput(ix, w, th, *dur, 1, *scale)
			fmt.Printf(" %7.3fM", m)
		}
		fmt.Println()
	}
	fmt.Println("\n(see cmd/rnbench -exp fig8 for the full figure)")
}
