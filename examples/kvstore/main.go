// Kvstore demonstrates the durable byte-string key-value layer built on
// RNTree (package kv) — the "primary key store" use case the paper's §3.3
// motivates. It loads a small user table with parallel writers (the value
// log is sharded, so Puts on different shards never serialize), overwrites
// and deletes under churn, crashes the machine, recovers, compacts, and
// prints the space accounting along the way.
package main

import (
	"fmt"
	"log"
	"sync"

	"rntree/kv"
)

func main() {
	// Four partitions: the store is a forest of four independent
	// tree+value-log pairs, each on its own arena with its own HTM
	// fallback lock, so writers contend on neither the index nor the log.
	s, err := kv.New(kv.Options{DualSlotArray: true, Partitions: 4})
	if err != nil {
		log.Fatal(err)
	}

	// A small "users" table with unique keys (conditional semantics live in
	// the tree underneath: the index key is the hash of the full key),
	// loaded by parallel writers: each key's hash picks a partition and a
	// value-log shard within it, so the writers' record persists overlap
	// instead of serializing behind one log lock.
	const writers = 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < 10_000; i += writers {
				key := fmt.Sprintf("user:%05d", i)
				val := fmt.Sprintf(`{"id":%d,"balance":%d}`, i, i*10)
				if err := s.Put([]byte(key), []byte(val)); err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}
	wg.Wait()
	st0 := s.Stats()
	fmt.Printf("loaded %d users with %d parallel writers over %d partitions x %d log shards\n",
		st0.LiveKeys, writers, st0.Partitions, st0.Shards/st0.Partitions)
	v, err := s.Get([]byte("user:00042"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user:00042 = %s\n", v)

	// Churn: overwrite every balance five times, delete a tenth of users.
	for round := 0; round < 5; round++ {
		for i := 0; i < 10_000; i++ {
			key := fmt.Sprintf("user:%05d", i)
			val := fmt.Sprintf(`{"id":%d,"round":%d}`, i, round)
			if err := s.Put([]byte(key), []byte(val)); err != nil {
				log.Fatal(err)
			}
		}
	}
	for i := 0; i < 10_000; i += 10 {
		if err := s.Delete([]byte(fmt.Sprintf("user:%05d", i))); err != nil {
			log.Fatal(err)
		}
	}
	st := s.Stats()
	fmt.Printf("after churn: %d live keys, %d dead log records, %d persists, %d tree leaves\n",
		st.LiveKeys, st.DeadRecords, st.Persists, st.TreeLeaves)

	// Power loss hits all four partition arenas at once. Everything
	// acknowledged must survive; each partition recovers independently.
	imgs := s.Snapshot()
	s2, err := kv.Open(imgs, kv.Options{DualSlotArray: true})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := s2.Get([]byte("user:00000")); err != kv.ErrNotFound {
		log.Fatal("deleted user resurrected after crash")
	}
	v, err = s2.Get([]byte("user:00042"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after crash recovery: %d live keys; user:00042 = %s\n", s2.Len(), v)

	// Reclaim the churned space.
	if err := s2.Compact(); err != nil {
		log.Fatal(err)
	}
	st = s2.Stats()
	fmt.Printf("after compaction: %d live keys, %d dead records\n", st.LiveKeys, st.DeadRecords)
}
