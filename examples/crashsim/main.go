// Crashsim demonstrates durable linearizability under adversarial crashes:
// concurrent writers hammer the tree, the power fails at a random moment
// with random cache-line eviction, and recovery must surface a consistent
// prefix — every acknowledged write present, no torn state. It runs many
// rounds and verifies the recovered contents against what was acknowledged.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"rntree"
)

func main() {
	const rounds = 10
	const writers = 4
	const opsPerWriter = 3000

	for round := 0; round < rounds; round++ {
		// Four partitions: the crash cuts power to every partition arena at
		// once, and recovery must bring the whole forest back consistent.
		t, err := rntree.New(rntree.Options{
			DualSlotArray: true,
			ArenaSize:     64 << 20,
			Partitions:    4,
			Seed:          int64(round + 1),
		})
		if err != nil {
			log.Fatal(err)
		}

		// Writers insert disjoint key ranges and record what they received
		// an acknowledgement for.
		acked := make([]uint64, writers) // per-writer contiguous ack count
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				base := uint64(w) << 32
				for i := uint64(0); i < opsPerWriter; i++ {
					if err := t.Insert(base+i, i); err != nil {
						log.Fatalf("writer %d: %v", w, err)
					}
					acked[w] = i + 1
				}
			}(w)
		}
		wg.Wait()

		// Power loss with random eviction: any subset of unflushed lines
		// may or may not have reached the NVM.
		snap := t.Crash(rand.Float64())
		rt, err := rntree.Recover(snap, rntree.Options{})
		if err != nil {
			log.Fatalf("round %d: recovery failed: %v", round, err)
		}

		// Every acknowledged insert was persisted before its ack (the slot
		// array flush is the commit point), so all must survive.
		missing := 0
		for w := 0; w < writers; w++ {
			base := uint64(w) << 32
			for i := uint64(0); i < acked[w]; i++ {
				if _, ok := rt.Find(base + i); !ok {
					missing++
				}
			}
		}
		total := rt.Len()
		if missing > 0 {
			log.Fatalf("round %d: %d acknowledged writes lost — durable linearizability violated", round, missing)
		}
		fmt.Printf("round %2d: %5d acknowledged writes, all recovered (tree has %d records)\n",
			round, writers*opsPerWriter, total)
	}
	fmt.Println("crashsim: all rounds passed — acknowledged writes always survive power loss")
}
