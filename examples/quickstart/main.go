// Quickstart: create an RNTree, write some records, read them back, crash
// the "machine", and recover — the smallest end-to-end tour of the API.
package main

import (
	"fmt"
	"log"

	"rntree"
)

func main() {
	// RNTree+DS: the dual slot array keeps reads non-blocking (§4.3).
	// Partitions hash-splits the index into a forest of 4 independent
	// trees, each with its own arena and HTM fallback lock; scans still
	// return globally sorted results.
	t, err := rntree.New(rntree.Options{DualSlotArray: true, Partitions: 4})
	if err != nil {
		log.Fatal(err)
	}

	// Conditional writes: Insert fails on duplicates, Update on absentees.
	for i := uint64(1); i <= 100_000; i++ {
		if err := t.Insert(i, i*i%997); err != nil {
			log.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := t.Insert(42, 0); err != rntree.ErrKeyExists {
		log.Fatalf("expected ErrKeyExists, got %v", err)
	}
	if err := t.Update(42, 4242); err != nil {
		log.Fatal(err)
	}

	v, ok := t.Find(42)
	fmt.Printf("Find(42) = %d (found=%v)\n", v, ok)

	// Sorted leaves make range queries cheap: no per-leaf sorting.
	fmt.Println("Scan [10, 15):")
	t.Scan(10, 5, func(k, v uint64) bool {
		fmt.Printf("  %d = %d\n", k, v)
		return true
	})

	s := t.Stats()
	fmt.Printf("after load: %d leaves, depth %d, %d persistent instructions (%.2f per insert)\n",
		s.Leaves, s.Depth, s.Persists, float64(s.Persists)/100_000)

	// Pull the plug: everything persisted survives; recovery rebuilds the
	// volatile internal nodes and transient metadata (§5.4).
	snap := t.Crash(0.5)
	t2, err := rntree.Recover(snap, rntree.Options{DualSlotArray: true})
	if err != nil {
		log.Fatal(err)
	}
	v, ok = t2.Find(42)
	fmt.Printf("after crash recovery: Find(42) = %d (found=%v), %d records intact\n",
		v, ok, t2.Len())
}
