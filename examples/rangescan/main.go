// Rangescan demonstrates the sorted-leaf advantage (Figure 6): RNTree scans
// leaves directly through the slot array, while NV-Tree and FPTree keep
// unsorted leaves and must sort every leaf a range query touches. The
// example loads the same data into all three and compares scan throughput
// across scan lengths.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"rntree"
	"rntree/internal/ycsb"
)

func main() {
	scale := flag.Uint64("scale", 100_000, "records to preload")
	dur := flag.Duration("duration", 200*time.Millisecond, "window per point")
	flag.Parse()

	opts := rntree.Options{ArenaSize: 256 << 20}
	trees := []struct {
		name string
		ix   rntree.Index
	}{}

	rn, err := rntree.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	trees = append(trees, struct {
		name string
		ix   rntree.Index
	}{"rntree", rn})
	for _, k := range []rntree.Kind{rntree.KindNVTree, rntree.KindFPTree} {
		ix, err := rntree.NewBaseline(k, opts)
		if err != nil {
			log.Fatal(err)
		}
		trees = append(trees, struct {
			name string
			ix   rntree.Index
		}{string(k), ix})
	}

	fmt.Printf("loading %d records into each tree...\n", *scale)
	for _, tr := range trees {
		for i := uint64(0); i < *scale; i++ {
			if err := tr.ix.Upsert(ycsb.KeyAt(i), i); err != nil {
				log.Fatalf("%s: %v", tr.name, err)
			}
		}
	}

	lengths := []int{10, 100, 1000}
	fmt.Printf("%-8s", "tree")
	for _, l := range lengths {
		fmt.Printf(" %10s", fmt.Sprintf("scan%d", l))
	}
	fmt.Println("   (scans/sec; higher is better)")
	base := make([]float64, len(lengths))
	for ti, tr := range trees {
		fmt.Printf("%-8s", tr.name)
		rng := rand.New(rand.NewSource(1))
		for li, l := range lengths {
			t0 := time.Now()
			deadline := t0.Add(*dur)
			ops := 0
			for !time.Now().After(deadline) {
				start := ycsb.KeyAt(uint64(rng.Int63n(int64(*scale))))
				tr.ix.Scan(start, l, func(_, _ uint64) bool { return true })
				ops++
			}
			rate := float64(ops) / time.Since(t0).Seconds()
			if ti == 0 {
				base[li] = rate
				fmt.Printf(" %10.0f", rate)
			} else {
				fmt.Printf(" %6.0f(%3.1fx)", rate, base[li]/rate)
			}
		}
		fmt.Println()
	}
	fmt.Println("\npaper: RNTree ≈4.2x NV-Tree/FPTree on range queries (sorting per leaf dominates)")
}
