package client

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Failover is a client over a primary/replica pair (or any fixed set of
// candidate servers): it tracks which node is primary, routes every call
// there, and on connection loss or a read-only rejection elects a new
// primary — preferring a live one, promoting a replica otherwise — and
// retries the call once.
//
// Epoch discipline prevents split-brain flapping: the wrapper remembers the
// highest primary epoch it has acted on and refuses to adopt a node whose
// epoch is lower (a deposed primary that came back). Promotions pass that
// epoch as the floor, so the new primary always supersedes the old one.
//
// Semantics under failover are at-least-once for mutations: a PUT whose
// connection died after the server committed but before the response
// arrived is retried against the new primary and applied again. PUT and
// DELETE are idempotent per key, so the visible end state matches a single
// application; callers needing exactly-once must layer their own sequence
// numbers on top.
type Failover struct {
	opts  Options
	addrs []string

	// mu serializes reconnect rounds; the wrapped client's own locks are
	// always acquired inside it:
	//
	//rnvet:lockorder client.Failover.mu<client.Client.connMu
	//rnvet:lockorder client.Failover.mu<client.Client.wMu
	//rnvet:lockorder client.Failover.mu<client.Client.pendMu
	mu    sync.Mutex
	c     *Client
	cur   int    // index into addrs of the node c is connected to
	epoch uint64 // highest primary epoch acted on (0 until learned)
	rng   uint64 // jitter state for inter-round backoff
}

// failoverRounds is how many passes over the candidate list one failover
// makes before giving up.
const failoverRounds = 8

// DialFailover connects to the first usable node and locates the primary
// among addrs. A node without replication enabled counts as a primary (so a
// single plain server works unchanged); replicas are only promoted if no
// live primary is found.
func DialFailover(addrs []string, opts Options) (*Failover, error) {
	if len(addrs) == 0 {
		return nil, errors.New("client: no addresses")
	}
	fo := &Failover{
		opts:  opts,
		addrs: append([]string(nil), addrs...),
		cur:   -1,
		rng:   uint64(time.Now().UnixNano()) | 1,
	}
	if err := fo.electLocked(false); err != nil {
		return nil, err
	}
	return fo, nil
}

// Addr returns the address of the node currently treated as primary.
func (fo *Failover) Addr() string {
	fo.mu.Lock()
	defer fo.mu.Unlock()
	return fo.addrs[fo.cur]
}

// Epoch returns the highest primary epoch observed (0 when the cluster has
// replication disabled).
func (fo *Failover) Epoch() uint64 {
	fo.mu.Lock()
	defer fo.mu.Unlock()
	return fo.epoch
}

// Close releases the underlying connection.
func (fo *Failover) Close() error {
	fo.mu.Lock()
	defer fo.mu.Unlock()
	if fo.c == nil {
		return ErrClosed
	}
	err := fo.c.Close()
	fo.c = nil
	return err
}

// retryable reports whether err means "this node is gone or no longer
// primary" — the cases a failover can cure. Timeouts are excluded: the
// server may just be slow, and failing over on them would promote
// spuriously.
func retryable(err error) bool {
	return errors.Is(err, ErrConnLost) || errors.Is(err, ErrClosing) ||
		errors.Is(err, ErrReadOnly) || errors.Is(err, ErrDial)
}

// call runs op against the current primary, failing over and retrying when
// the node is unreachable or rejects us as read-only. ErrReadOnly in
// particular is retried with backoff rather than returned after one
// failover: a FENCED primary answers elections as a primary (it holds the
// highest epoch) yet rejects writes until a replica resubscribes — a
// transient the cluster cures on its own, which a terminal error would
// wrongly surface to the caller. Attempts are bounded by failoverRounds;
// a cluster that stays write-rejecting that long returns the last error.
func (fo *Failover) call(op func(c *Client) error) error {
	fo.mu.Lock()
	c := fo.c
	fo.mu.Unlock()
	if c == nil {
		return ErrClosed
	}
	err := op(c)
	for attempt := 0; err != nil && attempt < failoverRounds; attempt++ {
		if errors.Is(err, ErrClosed) {
			// op ran against a client a concurrent election had already
			// retired (elections Close the connection they replace). Pick
			// up the replacement and retry; a Close()d wrapper has none.
			fo.mu.Lock()
			nc := fo.c
			fo.mu.Unlock()
			if nc == nil || nc == c {
				return err
			}
			c = nc
			err = op(c)
			continue
		}
		if !retryable(err) {
			return err
		}
		if attempt > 0 {
			// Re-electing instantly would re-adopt the same still-fenced
			// (or still-draining) node and spin through the budget in
			// microseconds; pace the retries like election rounds.
			fo.backoffRound(attempt - 1)
		}
		if ferr := fo.failover(c); ferr != nil {
			return fmt.Errorf("%w (failover: %v)", err, ferr)
		}
		fo.mu.Lock()
		c = fo.c
		fo.mu.Unlock()
		if c == nil {
			return ErrClosed
		}
		err = op(c)
	}
	return err
}

// failover replaces prev with a newly elected primary. Concurrent callers
// that lost on the same connection piggyback on the first election.
func (fo *Failover) failover(prev *Client) error {
	fo.mu.Lock()
	defer fo.mu.Unlock()
	if fo.c == nil {
		return ErrClosed
	}
	if fo.c != prev {
		return nil // someone else already failed over
	}
	return fo.electLocked(true)
}

// electLocked finds a primary among addrs and swaps the connection to it.
// With promote set, a replica is promoted when no acceptable primary
// answers in a round — the cutover path; without it (initial dial) only an
// existing primary (or a replication-less server) is accepted, so merely
// constructing a client never deposes anyone.
func (fo *Failover) electLocked(promote bool) error {
	if fo.c != nil {
		fo.c.Close()
		fo.c = nil
	}
	probeOpts := fo.opts
	probeOpts.ReconnectAttempts = 1
	var lastErr error
	for round := 0; round < failoverRounds; round++ {
		var bestReplica *Client
		bestIdx, bestEpoch := -1, uint64(0)
		for i, addr := range fo.addrs {
			c, err := Dial(addr, probeOpts)
			if err != nil {
				lastErr = err
				continue
			}
			role, epoch, _, err := c.ReplState()
			switch {
			case errors.Is(err, ErrNoRepl):
				// Plain server: it is the primary by construction.
				fo.adoptLocked(c, i, fo.epoch)
				if bestReplica != nil {
					bestReplica.Close()
				}
				return nil
			case err != nil:
				lastErr = err
				c.Close()
				continue
			case role == RolePrimary && epoch >= fo.epoch:
				fo.adoptLocked(c, i, epoch)
				if bestReplica != nil {
					bestReplica.Close()
				}
				return nil
			case role == RolePrimary:
				// Stale primary (epoch < ours): deposed node that came
				// back. Adopting it would fork history; skip it.
				lastErr = fmt.Errorf("client: stale primary %s: epoch %d < %d", addr, epoch, fo.epoch)
				c.Close()
			case promote && (bestReplica == nil || epoch >= bestEpoch):
				if bestReplica != nil {
					bestReplica.Close()
				}
				bestReplica, bestIdx, bestEpoch = c, i, epoch
			default:
				c.Close()
			}
		}
		if bestReplica != nil {
			epoch, err := bestReplica.Promote(fo.epoch)
			if err == nil {
				fo.adoptLocked(bestReplica, bestIdx, epoch)
				return nil
			}
			lastErr = err
			bestReplica.Close()
		}
		fo.sleepRound(round)
	}
	if lastErr == nil {
		lastErr = errors.New("client: no primary found")
	}
	return lastErr
}

func (fo *Failover) adoptLocked(c *Client, idx int, epoch uint64) {
	fo.c, fo.cur = c, idx
	if epoch > fo.epoch {
		fo.epoch = epoch
	}
}

// sleepRound waits a jittered exponential delay between election rounds so
// several clients racing through a dead cluster don't probe in lockstep.
// Caller holds fo.mu (the rng is guarded by it).
func (fo *Failover) sleepRound(round int) {
	time.Sleep(fo.jitterLocked(round))
}

// backoffRound is sleepRound for callers NOT holding fo.mu: the jitter
// state is read under the lock, the sleep happens outside it so concurrent
// calls are not serialized behind a sleeping one.
func (fo *Failover) backoffRound(round int) {
	fo.mu.Lock()
	d := fo.jitterLocked(round)
	fo.mu.Unlock()
	time.Sleep(d)
}

// jitterLocked returns round's slot of the jittered exponential schedule
// (10ms doubling to 500ms, jittered into [d/2, d]). Caller holds fo.mu.
func (fo *Failover) jitterLocked(round int) time.Duration {
	d := 10 * time.Millisecond
	for i := 0; i < round && d < 500*time.Millisecond; i++ {
		d *= 2
	}
	fo.rng ^= fo.rng << 13
	fo.rng ^= fo.rng >> 7
	fo.rng ^= fo.rng << 17
	return d/2 + time.Duration(fo.rng%uint64(d/2+1))
}

// Ping checks liveness of the current primary.
func (fo *Failover) Ping() error {
	return fo.call(func(c *Client) error { return c.Ping() })
}

// Get fetches the value for key from the primary.
func (fo *Failover) Get(key []byte) (val []byte, err error) {
	err = fo.call(func(c *Client) error {
		val, err = c.Get(key)
		return err
	})
	return val, err
}

// Put stores key → value on the primary (at-least-once under failover).
func (fo *Failover) Put(key, value []byte) error {
	return fo.call(func(c *Client) error { return c.Put(key, value) })
}

// PutDurable stores key → value and waits for replica durability; a nil
// return means the write survives the loss of either node, even if a
// failover happened mid-call.
func (fo *Failover) PutDurable(key, value []byte) error {
	return fo.call(func(c *Client) error { return c.PutDurable(key, value) })
}

// Delete removes key on the primary (at-least-once under failover).
func (fo *Failover) Delete(key []byte) error {
	return fo.call(func(c *Client) error { return c.Delete(key) })
}

// Scan returns up to max pairs with the given prefix from the primary.
func (fo *Failover) Scan(prefix []byte, max int) (kvs []KV, err error) {
	err = fo.call(func(c *Client) error {
		kvs, err = c.Scan(prefix, max)
		return err
	})
	return kvs, err
}

// HSet stores field → value in the hash named key on the primary
// (at-least-once under failover; HSET is idempotent per field).
func (fo *Failover) HSet(key, field, value []byte) error {
	return fo.call(func(c *Client) error { return c.HSet(key, field, value) })
}

// HGet fetches field of the hash named key from the primary.
func (fo *Failover) HGet(key, field []byte) (val []byte, err error) {
	err = fo.call(func(c *Client) error {
		val, err = c.HGet(key, field)
		return err
	})
	return val, err
}

// HDel removes field from the hash named key on the primary.
func (fo *Failover) HDel(key, field []byte) error {
	return fo.call(func(c *Client) error { return c.HDel(key, field) })
}

// SAdd adds member to the set named key on the primary.
func (fo *Failover) SAdd(key, member []byte) error {
	return fo.call(func(c *Client) error { return c.SAdd(key, member) })
}

// SRem removes member from the set named key on the primary.
func (fo *Failover) SRem(key, member []byte) error {
	return fo.call(func(c *Client) error { return c.SRem(key, member) })
}

// SMembers fetches the members of the set named key from the primary.
func (fo *Failover) SMembers(key []byte) (members [][]byte, err error) {
	err = fo.call(func(c *Client) error {
		members, err = c.SMembers(key)
		return err
	})
	return members, err
}

// Expire sets key's TTL on the primary.
func (fo *Failover) Expire(key []byte, ttlMs uint64) error {
	return fo.call(func(c *Client) error { return c.Expire(key, ttlMs) })
}

// TTL fetches key's remaining TTL from the primary.
func (fo *Failover) TTL(key []byte) (ttl int64, err error) {
	err = fo.call(func(c *Client) error {
		ttl, err = c.TTL(key)
		return err
	})
	return ttl, err
}

// Persist removes key's TTL on the primary.
func (fo *Failover) Persist(key []byte) error {
	return fo.call(func(c *Client) error { return c.Persist(key) })
}

// Stats fetches the primary's counters.
func (fo *Failover) Stats() (m map[string]uint64, err error) {
	err = fo.call(func(c *Client) error {
		m, err = c.Stats()
		return err
	})
	return m, err
}
