// Package client is the Go client for rnserved, the RNTree kv network
// server. One Client multiplexes any number of goroutines over a single
// pipelined connection: each call is assigned a request ID, written to the
// shared socket, and matched to its (possibly out-of-order) response by a
// background reader — so N concurrent callers get N-deep pipelining with
// no per-call connection cost.
//
// The client reconnects lazily with jittered exponential backoff (the same
// desynchronization shape the HTM layer uses for conflict retries: a
// splitmix64 stream jitters each delay in [d/2, d], so a fleet of clients
// that lost the same server does not reconnect in lock-step). Calls that
// were in flight when the connection died fail with ErrConnLost — the
// caller cannot know whether a lost PUT committed, exactly like any
// at-most-once RPC — and subsequent calls transparently use the new
// connection.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rntree/internal/wire"
)

// Client errors.
var (
	// ErrClosed is returned by calls on a Close()d client.
	ErrClosed = errors.New("client: closed")
	// ErrNotFound is returned by Get/Delete for absent keys.
	ErrNotFound = errors.New("client: key not found")
	// ErrOverloaded is the server's backpressure rejection; back off and
	// retry.
	ErrOverloaded = errors.New("client: server overloaded")
	// ErrClosing means the server is draining; reconnect later.
	ErrClosing = errors.New("client: server closing")
	// ErrTimeout is a per-call timeout; the request may still execute.
	ErrTimeout = errors.New("client: request timed out")
	// ErrConnLost fails calls whose connection died mid-flight; mutations
	// may or may not have committed.
	ErrConnLost = errors.New("client: connection lost")
	// ErrReadOnly means the server is a replica: writes go to the primary
	// (or the replica must be promoted first — see Failover).
	ErrReadOnly = errors.New("client: server is a read-only replica")
	// ErrDial wraps connection-establishment failures.
	ErrDial = errors.New("client: dial failed")
	// ErrNoRepl is returned by ReplState/Promote against a server without
	// replication enabled.
	ErrNoRepl = errors.New("client: replication not enabled on server")
)

// Replication roles as reported by ReplState.
const (
	RolePrimary = wire.RolePrimary
	RoleReplica = wire.RoleReplica
)

// Options tune a Client. Zero values take the documented defaults.
type Options struct {
	// DialTimeout bounds one connection attempt (default 2s).
	DialTimeout time.Duration
	// Timeout bounds one call, write to response (default 5s).
	Timeout time.Duration
	// MaxInflight caps pipelined requests on the connection (default 64 —
	// match the server's per-connection limit; deeper pipelines would
	// stall in TCP anyway).
	MaxInflight int
	// ReconnectAttempts is how many dials one call will try before
	// failing (default 5).
	ReconnectAttempts int
	// ReconnectBase/ReconnectMax bound the jittered exponential backoff
	// between dials (defaults 10ms and 1s).
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
	// OverloadRetries is how many times a call rejected with
	// StatusOverloaded is retried, each retry preceded by the same jittered
	// exponential backoff the reconnect path uses (0 disables: the call
	// returns ErrOverloaded immediately). Overload rejections happen before
	// the store is touched, so retrying mutations is safe.
	OverloadRetries int
}

func (o *Options) normalize() {
	if o.DialTimeout == 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.Timeout == 0 {
		o.Timeout = 5 * time.Second
	}
	if o.MaxInflight == 0 {
		o.MaxInflight = 64
	}
	if o.ReconnectAttempts == 0 {
		o.ReconnectAttempts = 5
	}
	if o.ReconnectBase == 0 {
		o.ReconnectBase = 10 * time.Millisecond
	}
	if o.ReconnectMax == 0 {
		o.ReconnectMax = time.Second
	}
}

// KV is one key/value pair returned by Scan.
type KV struct {
	Key, Value []byte
}

// result is one response delivery.
type result struct {
	resp wire.Response
	err  error
}

// pending is one in-flight call.
type pending struct {
	gen      uint64
	deadline time.Time
	ch       chan result
}

// Client is a concurrency-safe pipelined connection to one server.
type Client struct {
	addr string
	opts Options

	sem    chan struct{} // inflight tokens
	nextID atomic.Uint64
	closed atomic.Bool

	// connMu guards connection (re)establishment.
	connMu  sync.Mutex
	conn    net.Conn
	gen     uint64        // bumped on every teardown, tags pending entries
	backoff atomic.Uint64 // splitmix64 jitter state (shared by overload retries)

	// Callers append request frames to wBuf under wMu and nudge the writer
	// goroutine, which swaps the buffer out and writes it with one syscall
	// — frames queued by other pipeline workers while a write is in flight
	// ride the next one, so the syscall count scales with write bursts,
	// not with calls. wBufGen tags the buffered frames' connection
	// generation: frames for a torn-down generation are dropped unsent
	// (teardown already failed their pending entries). The server's conn
	// has the matching response-side scheme.
	wMu     sync.Mutex
	wBuf    []byte
	wBufGen uint64
	wSig    chan struct{} // cap 1: "wBuf is non-empty"
	wStop   chan struct{} // closed by Close; writeLoop exits

	pendMu sync.Mutex
	pend   map[uint64]pending
}

// Dial connects to an rnserved address. The first connection is
// established eagerly so configuration errors surface here.
func Dial(addr string, opts Options) (*Client, error) {
	opts.normalize()
	c := &Client{
		addr:  addr,
		opts:  opts,
		sem:   make(chan struct{}, opts.MaxInflight),
		pend:  map[uint64]pending{},
		wSig:  make(chan struct{}, 1),
		wStop: make(chan struct{}),
	}
	c.backoff.Store(splitmix64seed.Add(0x9e3779b97f4a7c15) | 1)
	c.connMu.Lock()
	if _, _, err := c.ensureConnLocked(opts.ReconnectAttempts); err != nil {
		c.connMu.Unlock()
		return nil, err
	}
	c.connMu.Unlock()
	go c.writeLoop()
	go c.sweepLoop()
	return c, nil
}

// writeLoop is the client's writer: each wakeup swaps the accumulated
// frame buffer out under the lock and writes it to the buffered frames'
// connection with one syscall. A write error tears that generation down
// (failing its in-flight calls); frames buffered for an already-replaced
// generation are dropped, since teardown has failed their callers. The
// loop lives for the client's whole lifetime, across reconnects.
// writerIdleYields is how many scheduler yields the writer goroutine makes
// with an empty buffer before parking on its signal channel. See writeLoop.
const writerIdleYields = 4

func (c *Client) writeLoop() {
	var spare []byte
	var armed time.Time
	var armedConn net.Conn
	for {
		select {
		case <-c.wSig:
			// One yield before swapping: the channel wakeup schedules this
			// writer ahead of the other just-woken pipeline workers (the
			// runnext slot), which would mean one syscall per frame.
			// Yielding lets the rest of the burst append first, so the
			// swap takes every frame of the burst in one write.
			runtime.Gosched()
		case <-c.wStop:
			return
		}
		idle := 0
		for {
			c.wMu.Lock()
			buf, gen := c.wBuf, c.wBufGen
			c.wBuf = spare[:0]
			c.wMu.Unlock()
			if len(buf) == 0 {
				// Yield a few beats with the buffer empty before parking:
				// at depth the pipeline workers refill it within a
				// scheduler pass, and picking frames up here coalesces
				// many requests per write syscall. An idle client's
				// yields return immediately and the writer parks on wSig.
				spare = buf
				if idle >= writerIdleYields {
					break
				}
				idle++
				runtime.Gosched()
				continue
			}
			idle = 0
			c.connMu.Lock()
			conn := c.conn
			if c.gen != gen {
				conn = nil
			}
			c.connMu.Unlock()
			if conn == nil {
				spare = buf[:0]
				continue
			}
			// Throttle SetWriteDeadline to once per Timeout/4 per
			// connection: a timer-heap update per write is measurable at
			// pipelined rates and the deadline needs no precision.
			if now := time.Now(); conn != armedConn || now.Sub(armed) > c.opts.Timeout/4 {
				conn.SetWriteDeadline(now.Add(c.opts.Timeout))
				armed, armedConn = now, conn
			}
			_, err := conn.Write(buf)
			spare = buf[:0]
			if err != nil {
				c.teardown(gen, ErrConnLost)
			}
		}
	}
}

// sweepLoop enforces call timeouts in bulk: every Timeout/4 it fails the
// pending calls whose deadline has passed. A per-call runtime timer — even
// a pooled one — costs two timer-heap updates per request, which is
// measurable at pipelined rates; the sweep makes timeout enforcement
// O(sweeps) instead of O(calls), at the price of ErrTimeout arriving up to
// a quarter-Timeout late. The loop exits (within one sweep interval) after
// Close.
func (c *Client) sweepLoop() {
	interval := c.opts.Timeout / 4
	if interval > 500*time.Millisecond {
		interval = 500 * time.Millisecond
	}
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	for !c.closed.Load() {
		time.Sleep(interval)
		now := time.Now()
		var expired []chan result
		c.pendMu.Lock()
		for id, p := range c.pend {
			if now.After(p.deadline) {
				delete(c.pend, id)
				expired = append(expired, p.ch)
			}
		}
		c.pendMu.Unlock()
		// Deliveries happen after the map removal, so each registration
		// still gets exactly one result (late responses are dropped by
		// readLoop when the ID is gone).
		for _, ch := range expired {
			ch <- result{err: ErrTimeout}
		}
	}
}

// splitmix64seed desynchronizes the backoff streams of clients created in
// the same process.
var splitmix64seed atomic.Uint64

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// sleepBackoff sleeps for attempt's slot of the jittered exponential
// schedule: d doubles from ReconnectBase up to ReconnectMax, jittered into
// [d/2, d].
func (c *Client) sleepBackoff(attempt int) {
	d := c.opts.ReconnectBase << uint(attempt)
	if d > c.opts.ReconnectMax || d <= 0 {
		d = c.opts.ReconnectMax
	}
	j := splitmix64(c.backoff.Add(0x9e3779b97f4a7c15))
	half := uint64(d) / 2
	time.Sleep(time.Duration(half + j%(half+1)))
}

// ensureConnLocked returns the live connection, dialing with backoff if
// needed. Caller holds connMu.
func (c *Client) ensureConnLocked(attempts int) (net.Conn, uint64, error) {
	if c.conn != nil {
		return c.conn, c.gen, nil
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			c.sleepBackoff(a - 1)
		}
		if c.closed.Load() {
			return nil, 0, ErrClosed
		}
		conn, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		c.conn = conn
		c.gen++
		go c.readLoop(conn, c.gen)
		return conn, c.gen, nil
	}
	return nil, 0, fmt.Errorf("%w: %s: %v", ErrDial, c.addr, lastErr)
}

// teardown retires a broken connection generation and fails its pending
// calls. Later generations are untouched.
func (c *Client) teardown(gen uint64, cause error) {
	c.connMu.Lock()
	if c.gen == gen && c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	c.connMu.Unlock()
	c.pendMu.Lock()
	for id, p := range c.pend {
		if p.gen == gen {
			delete(c.pend, id)
			p.ch <- result{err: cause}
		}
	}
	c.pendMu.Unlock()
}

// readLoop pumps responses for one connection generation and routes them
// by request ID.
func (c *Client) readLoop(conn net.Conn, gen uint64) {
	br := bufio.NewReaderSize(conn, 64<<10)
	var buf []byte
	for {
		payload, err := wire.ReadFrame(br, buf)
		if err != nil {
			cause := ErrConnLost
			if c.closed.Load() {
				cause = ErrClosed
			}
			c.teardown(gen, cause)
			return
		}
		buf = payload[:0]
		resp, err := wire.DecodeResponse(payload)
		if err != nil {
			// A malformed response means the stream framing can no
			// longer be trusted.
			c.teardown(gen, fmt.Errorf("client: protocol error: %w", err))
			return
		}
		// Own the bytes beyond this frame.
		resp.Val = append([]byte(nil), resp.Val...)
		for i := range resp.Pairs {
			resp.Pairs[i].Key = append([]byte(nil), resp.Pairs[i].Key...)
			resp.Pairs[i].Val = append([]byte(nil), resp.Pairs[i].Val...)
		}
		for i := range resp.Members {
			resp.Members[i] = append([]byte(nil), resp.Members[i]...)
		}
		c.pendMu.Lock()
		p, ok := c.pend[resp.ID]
		if ok {
			delete(c.pend, resp.ID)
		}
		c.pendMu.Unlock()
		if ok {
			p.ch <- result{resp: resp}
		}
		// Unmatched IDs are late responses to calls already failed by the
		// timeout sweep or a teardown. IDs are never reused, so such a
		// response cannot belong to any other caller: dropping it here is
		// the whole response-after-timeout story.
	}
}

// do executes one pipelined request/response exchange.
func (c *Client) do(req wire.Request) (wire.Response, error) {
	if c.closed.Load() {
		return wire.Response{}, ErrClosed
	}
	c.sem <- struct{}{}
	defer func() { <-c.sem }()

	c.connMu.Lock()
	_, gen, err := c.ensureConnLocked(c.opts.ReconnectAttempts)
	c.connMu.Unlock()
	if err != nil {
		return wire.Response{}, err
	}

	req.ID = c.nextID.Add(1)
	fbuf, _ := framePool.Get().([]byte)
	frame, err := wire.AppendRequest(fbuf[:0], req)
	if err != nil {
		framePool.Put(frame[:0]) //nolint:staticcheck // []byte pooling is deliberate
		return wire.Response{}, err
	}
	// Response-after-timeout audit (why a late response can never complete
	// a different caller's call): request IDs come from a monotonic counter
	// and are NEVER reused, so a response outliving its call matches no
	// other caller's pend entry — readLoop drops it. The result channel IS
	// reused (chanPool), but only after its previous registration was
	// delivered: removal of the pend entry under pendMu is the single
	// commit point, exactly one of readLoop / teardown / sweepLoop wins it,
	// and only the winner sends on the channel. A channel coming out of the
	// pool is therefore always empty.
	ch := chanPool.Get().(chan result)
	c.pendMu.Lock()
	c.pend[req.ID] = pending{gen: gen, deadline: time.Now().Add(c.opts.Timeout), ch: ch}
	c.pendMu.Unlock()

	// Re-check closed AFTER registering: Close sweeps the pending map
	// exactly once (teardown) and sweepLoop exits with the flag, so an
	// entry registered after that sweep has no deliverer left — without
	// this check the call would hang forever on its channel. Close sets the
	// flag before its sweep takes pendMu, so either the sweep saw our entry
	// (it delivers ErrClosed below) or this load sees the flag and we
	// withdraw the entry ourselves. Losing the withdrawal race just means a
	// delivery is already committed — take it.
	if c.closed.Load() {
		framePool.Put(frame[:0]) //nolint:staticcheck // []byte pooling is deliberate
		c.pendMu.Lock()
		_, mine := c.pend[req.ID]
		if mine {
			delete(c.pend, req.ID)
		}
		c.pendMu.Unlock()
		if mine {
			chanPool.Put(ch)
			return wire.Response{}, ErrClosed
		}
		r := <-ch
		chanPool.Put(ch)
		if r.err != nil {
			return wire.Response{}, r.err
		}
		return r.resp, nil
	}

	// Queue the frame for the writer goroutine, which coalesces every
	// frame queued behind the in-flight write into one syscall. A buffer
	// still holding an OLDER generation's frames means that generation was
	// torn down (failing its callers); ours starts the buffer over. A
	// NEWER generation in the buffer means our own generation is the
	// torn-down one — drop our frame unwritten; teardown(gen) has already
	// delivered our result.
	c.wMu.Lock()
	if c.wBufGen < gen {
		c.wBuf = c.wBuf[:0]
		c.wBufGen = gen
	}
	if c.wBufGen == gen {
		c.wBuf = append(c.wBuf, frame...)
	}
	c.wMu.Unlock()
	framePool.Put(frame[:0]) //nolint:staticcheck // []byte pooling is deliberate
	select {
	case c.wSig <- struct{}{}:
	default:
	}

	// Exactly one of readLoop (the response), teardown (connection loss or
	// Close) or sweepLoop (timeout) removes our pend entry and delivers —
	// so this receive always completes and the channel is empty and
	// reusable afterwards.
	r := <-ch
	chanPool.Put(ch)
	if r.err != nil {
		return wire.Response{}, r.err
	}
	return r.resp, nil
}

// framePool recycles request-frame buffers: bufio.Writer.Write copies the
// frame before returning, so the buffer is dead as soon as the write
// section unlocks.
var framePool sync.Pool

// chanPool recycles result channels: a pending entry's channel receives
// exactly one delivery per registration, so after do's receive it is empty
// and safe to reuse.
var chanPool = sync.Pool{New: func() any { return make(chan result, 1) }}

// statusErr maps a non-OK response to a client error.
func statusErr(r wire.Response) error {
	switch r.Status {
	case wire.StatusOK:
		return nil
	case wire.StatusNotFound:
		return ErrNotFound
	case wire.StatusOverloaded:
		return ErrOverloaded
	case wire.StatusClosing:
		return ErrClosing
	case wire.StatusReadOnly:
		return ErrReadOnly
	case wire.StatusNoRepl:
		return ErrNoRepl
	case wire.StatusErr:
		return fmt.Errorf("client: server error: %s", r.Msg)
	}
	return fmt.Errorf("client: unknown status %d", r.Status)
}

// doRetry is do plus the opt-in overload retry: a StatusOverloaded
// response is retried up to OverloadRetries times, each attempt preceded
// by a jittered exponential backoff slot. Every retry is a fresh request
// (new ID); the server rejected the original before touching the store.
func (c *Client) doRetry(req wire.Request) (wire.Response, error) {
	r, err := c.do(req)
	for a := 0; err == nil && r.Status == wire.StatusOverloaded && a < c.opts.OverloadRetries; a++ {
		c.sleepBackoff(a)
		r, err = c.do(req)
	}
	return r, err
}

// Ping round-trips an empty request.
func (c *Client) Ping() error {
	r, err := c.doRetry(wire.Request{Op: wire.OpPing})
	if err != nil {
		return err
	}
	return statusErr(r)
}

// Get returns the value stored under key.
func (c *Client) Get(key []byte) ([]byte, error) {
	r, err := c.doRetry(wire.Request{Op: wire.OpGet, Key: key})
	if err != nil {
		return nil, err
	}
	if err := statusErr(r); err != nil {
		return nil, err
	}
	return r.Val, nil
}

// Put stores key → value. A nil return means the write is durable on the
// server.
func (c *Client) Put(key, value []byte) error {
	r, err := c.doRetry(wire.Request{Op: wire.OpPut, Key: key, Val: value})
	if err != nil {
		return err
	}
	return statusErr(r)
}

// Delete removes key.
func (c *Client) Delete(key []byte) error {
	r, err := c.doRetry(wire.Request{Op: wire.OpDel, Key: key})
	if err != nil {
		return err
	}
	return statusErr(r)
}

// Scan returns up to max live pairs whose key starts with prefix (nil
// prefix matches everything), in unspecified order.
func (c *Client) Scan(prefix []byte, max int) ([]KV, error) {
	r, err := c.doRetry(wire.Request{Op: wire.OpScan, ScanPrefix: prefix, ScanMax: uint32(max)})
	if err != nil {
		return nil, err
	}
	if err := statusErr(r); err != nil {
		return nil, err
	}
	out := make([]KV, len(r.Pairs))
	for i, p := range r.Pairs {
		out[i] = KV{Key: p.Key, Value: p.Val}
	}
	return out, nil
}

// Stats returns the server's named counters (store stats plus serving
// counters; see DESIGN.md §10).
func (c *Client) Stats() (map[string]uint64, error) {
	r, err := c.doRetry(wire.Request{Op: wire.OpStats})
	if err != nil {
		return nil, err
	}
	if err := statusErr(r); err != nil {
		return nil, err
	}
	out := make(map[string]uint64, len(r.Counters))
	for _, ctr := range r.Counters {
		out[ctr.Name] = ctr.Val
	}
	return out, nil
}

// PutDurable stores key → value and waits for the server to confirm the
// write is persisted on a replica as well (the wire Durable flag): a nil
// return survives the loss of either node. Fails with a server error when
// no replica catches up within the server's durable timeout — the write is
// still committed on the primary in that case.
func (c *Client) PutDurable(key, value []byte) error {
	r, err := c.doRetry(wire.Request{Op: wire.OpPut, Key: key, Val: value, Durable: true})
	if err != nil {
		return err
	}
	return statusErr(r)
}

// HSet stores field → value inside the hash object named key, creating the
// hash if absent. The commit is crash-atomic on the server even though it
// touches multiple records (see the server's typed-object layer).
func (c *Client) HSet(key, field, value []byte) error {
	r, err := c.doRetry(wire.Request{Op: wire.OpHSet, Key: key, Field: field, Val: value})
	if err != nil {
		return err
	}
	return statusErr(r)
}

// HGet returns the value of field in the hash named key. ErrNotFound means
// the hash, or the field, is absent (or the key's TTL has lapsed).
func (c *Client) HGet(key, field []byte) ([]byte, error) {
	r, err := c.doRetry(wire.Request{Op: wire.OpHGet, Key: key, Field: field})
	if err != nil {
		return nil, err
	}
	if err := statusErr(r); err != nil {
		return nil, err
	}
	return r.Val, nil
}

// HDel removes field from the hash named key; removing the last field
// removes the hash itself.
func (c *Client) HDel(key, field []byte) error {
	r, err := c.doRetry(wire.Request{Op: wire.OpHDel, Key: key, Field: field})
	if err != nil {
		return err
	}
	return statusErr(r)
}

// SAdd adds member to the set named key, creating the set if absent.
// Adding a resident member is a no-op.
func (c *Client) SAdd(key, member []byte) error {
	r, err := c.doRetry(wire.Request{Op: wire.OpSAdd, Key: key, Field: member})
	if err != nil {
		return err
	}
	return statusErr(r)
}

// SRem removes member from the set named key; removing the last member
// removes the set itself.
func (c *Client) SRem(key, member []byte) error {
	r, err := c.doRetry(wire.Request{Op: wire.OpSRem, Key: key, Field: member})
	if err != nil {
		return err
	}
	return statusErr(r)
}

// SMembers returns every member of the set named key, in unspecified
// order. An absent (or expired) set returns an empty slice, like Redis.
func (c *Client) SMembers(key []byte) ([][]byte, error) {
	r, err := c.doRetry(wire.Request{Op: wire.OpSMembers, Key: key})
	if err != nil {
		return nil, err
	}
	if err := statusErr(r); err != nil {
		return nil, err
	}
	return r.Members, nil
}

// Expire sets key's time-to-live in milliseconds; after it lapses the key
// reads as absent and is reaped in the background. Works on flat keys and
// typed objects alike. ErrNotFound means the key does not exist.
func (c *Client) Expire(key []byte, ttlMs uint64) error {
	r, err := c.doRetry(wire.Request{Op: wire.OpExpire, Key: key, TTLMs: ttlMs})
	if err != nil {
		return err
	}
	return statusErr(r)
}

// TTL returns key's remaining time-to-live in milliseconds, or -1 when the
// key exists without a TTL. ErrNotFound means the key is absent or its TTL
// has already lapsed.
func (c *Client) TTL(key []byte) (int64, error) {
	r, err := c.doRetry(wire.Request{Op: wire.OpTTL, Key: key})
	if err != nil {
		return 0, err
	}
	if err := statusErr(r); err != nil {
		return 0, err
	}
	return r.TTL, nil
}

// Persist removes key's TTL, if any; the key then lives until deleted.
func (c *Client) Persist(key []byte) error {
	r, err := c.doRetry(wire.Request{Op: wire.OpPersist, Key: key})
	if err != nil {
		return err
	}
	return statusErr(r)
}

// ReplState asks the server for its replication role, epoch and
// per-partition LSN vector (the REPL.HELLO handshake, sent as an
// observer). ErrNoRepl (the wire.StatusNoRepl code, not a message match)
// means the server has replication disabled.
func (c *Client) ReplState() (role uint8, epoch uint64, lsns []uint64, err error) {
	r, err := c.doRetry(wire.Request{Op: wire.OpReplHello})
	if err != nil {
		return 0, 0, nil, err
	}
	if err := statusErr(r); err != nil {
		return 0, 0, nil, err
	}
	return r.ReplRole, r.ReplEpoch, r.ReplLSNs, nil
}

// Promote asks the server to take over as primary at an epoch strictly
// above minEpoch (the caller's last observed primary epoch), returning the
// epoch it now serves at. Idempotent: promoting an already-promoted
// primary whose epoch supersedes minEpoch returns that epoch unchanged.
func (c *Client) Promote(minEpoch uint64) (uint64, error) {
	r, err := c.doRetry(wire.Request{Op: wire.OpPromote, ReplEpoch: minEpoch})
	if err != nil {
		return 0, err
	}
	if err := statusErr(r); err != nil {
		return 0, err
	}
	return r.ReplEpoch, nil
}

// Close tears the connection down; concurrent and subsequent calls fail
// with ErrClosed.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return ErrClosed
	}
	c.connMu.Lock()
	conn := c.conn
	gen := c.gen
	c.conn = nil
	c.connMu.Unlock()
	if conn != nil {
		conn.Close()
	}
	close(c.wStop)
	c.teardown(gen, ErrClosed)
	return nil
}
