package client

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"rntree/internal/wire"
)

// fakeServer is a minimal in-test wire server: it answers PING/PUT/GET
// from a map, optionally delaying or dropping responses, so client
// behavior is testable without the real serving stack (which has its own
// tests in internal/server).
type fakeServer struct {
	ln net.Listener

	mu      sync.Mutex
	data    map[string][]byte
	conns   int
	dropAll bool          // accept but never respond
	delay   time.Duration // per-request artificial latency
}

func newFakeServer(t *testing.T) *fakeServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := &fakeServer{ln: ln, data: map[string][]byte{}}
	go fs.acceptLoop()
	t.Cleanup(func() { ln.Close() })
	return fs
}

func (fs *fakeServer) addr() string { return fs.ln.Addr().String() }

func (fs *fakeServer) connCount() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.conns
}

func (fs *fakeServer) acceptLoop() {
	for {
		c, err := fs.ln.Accept()
		if err != nil {
			return
		}
		fs.mu.Lock()
		fs.conns++
		fs.mu.Unlock()
		go fs.serve(c)
	}
}

func (fs *fakeServer) serve(c net.Conn) {
	defer c.Close()
	br := bufio.NewReader(c)
	var buf []byte
	for {
		payload, err := wire.ReadFrame(br, buf)
		if err != nil {
			return
		}
		buf = payload[:0]
		req, err := wire.DecodeRequest(payload)
		if err != nil {
			return
		}
		fs.mu.Lock()
		drop, delay := fs.dropAll, fs.delay
		fs.mu.Unlock()
		if drop {
			continue
		}
		if delay > 0 {
			time.Sleep(delay)
		}
		resp := wire.Response{ID: req.ID, Op: req.Op, Status: wire.StatusOK}
		switch req.Op {
		case wire.OpPut:
			fs.mu.Lock()
			fs.data[string(req.Key)] = append([]byte(nil), req.Val...)
			fs.mu.Unlock()
		case wire.OpGet:
			fs.mu.Lock()
			v, ok := fs.data[string(req.Key)]
			fs.mu.Unlock()
			if ok {
				resp.Val = v
			} else {
				resp.Status = wire.StatusNotFound
			}
		}
		frame, _ := wire.AppendResponse(nil, resp)
		c.Write(frame)
	}
}

func TestClientBasics(t *testing.T) {
	fs := newFakeServer(t)
	c, err := Dial(fs.addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get([]byte("k"))
	if err != nil || !bytes.Equal(v, []byte("v")) {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if _, err := c.Get([]byte("nope")); err != ErrNotFound {
		t.Fatalf("absent Get: %v", err)
	}
}

func TestDialFailsCleanly(t *testing.T) {
	// A port with nothing listening (bind then close to claim one).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	start := time.Now()
	_, err = Dial(addr, Options{ReconnectAttempts: 3, ReconnectBase: 5 * time.Millisecond, ReconnectMax: 20 * time.Millisecond})
	if err == nil {
		t.Fatal("Dial to a dead address succeeded")
	}
	// Backoff between the 3 attempts must have actually slept (jitter in
	// [d/2, d] per gap) but stayed bounded.
	if e := time.Since(start); e < 5*time.Millisecond || e > 5*time.Second {
		t.Fatalf("dial retries took %v", e)
	}
}

// TestReconnectAfterConnLoss: the in-flight call fails with ErrConnLost,
// the next call transparently redials.
func TestReconnectAfterConnLoss(t *testing.T) {
	fs := newFakeServer(t)
	c, err := Dial(fs.addr(), Options{ReconnectBase: 2 * time.Millisecond, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	// Kill the live server connection out from under the client.
	fs.mu.Lock()
	fs.dropAll = true
	fs.mu.Unlock()
	done := make(chan error, 1)
	go func() { done <- c.Ping() }()
	// While the ping is parked, sever the connection: the pending call
	// must fail with ErrConnLost (not hang).
	time.Sleep(20 * time.Millisecond)
	c.connMu.Lock()
	if c.conn != nil {
		c.conn.Close()
	}
	c.connMu.Unlock()
	if err := <-done; err != ErrConnLost {
		t.Fatalf("in-flight call after conn loss: %v", err)
	}
	fs.mu.Lock()
	fs.dropAll = false
	fs.mu.Unlock()
	// Next call redials.
	if err := c.Ping(); err != nil {
		t.Fatalf("call after reconnect: %v", err)
	}
	if fs.connCount() < 2 {
		t.Fatalf("no reconnect observed (%d connections)", fs.connCount())
	}
}

func TestCallTimeout(t *testing.T) {
	fs := newFakeServer(t)
	fs.mu.Lock()
	fs.dropAll = true
	fs.mu.Unlock()
	c, err := Dial(fs.addr(), Options{Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if err := c.Ping(); err != ErrTimeout {
		t.Fatalf("Ping on mute server: %v", err)
	}
	if e := time.Since(start); e > 2*time.Second {
		t.Fatalf("timeout took %v", e)
	}
}

// TestPipelinedConcurrentCalls: many goroutines share the client; each
// response must route to its caller (the fake server adds latency so
// responses genuinely overlap).
func TestPipelinedConcurrentCalls(t *testing.T) {
	fs := newFakeServer(t)
	fs.mu.Lock()
	fs.delay = time.Millisecond
	fs.mu.Unlock()
	c, err := Dial(fs.addr(), Options{MaxInflight: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	for g := 0; g < 24; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			k := []byte(fmt.Sprintf("key-%d", g))
			v := []byte(fmt.Sprintf("value-%d", g))
			if err := c.Put(k, v); err != nil {
				t.Errorf("Put: %v", err)
				return
			}
			got, err := c.Get(k)
			if err != nil || !bytes.Equal(got, v) {
				t.Errorf("Get(%s) = %q, %v (cross-routed response?)", k, got, err)
			}
		}(g)
	}
	wg.Wait()
}

func TestClosedClient(t *testing.T) {
	fs := newFakeServer(t)
	c, err := Dial(fs.addr(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != ErrClosed {
		t.Fatalf("second Close: %v", err)
	}
	if err := c.Ping(); err != ErrClosed {
		t.Fatalf("Ping after Close: %v", err)
	}
}

// TestLateResponseDropped pins the response-after-timeout contract: a
// server reply arriving after the sweep has already failed its call with
// ErrTimeout must be dropped, never delivered to a later call — even
// though that later call reuses the pooled result channel of the dead one.
// The raw connection lets the test control exactly when each reply frame
// hits the wire.
func TestLateResponseDropped(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	reqs := make(chan wire.Request, 16)
	connCh := make(chan net.Conn, 1)
	go func() {
		sc, err := ln.Accept()
		if err != nil {
			return
		}
		connCh <- sc
		br := bufio.NewReader(sc)
		for {
			payload, err := wire.ReadFrame(br, nil)
			if err != nil {
				return
			}
			req, err := wire.DecodeRequest(payload)
			if err != nil {
				return
			}
			req.Key = append([]byte(nil), req.Key...)
			reqs <- req
		}
	}()

	c, err := Dial(ln.Addr().String(), Options{Timeout: 60 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sc := <-connCh
	defer sc.Close()

	// Call 1: the server reads the request but withholds the reply until
	// after the sweep fires ErrTimeout.
	if _, err := c.Get([]byte("held")); err != ErrTimeout {
		t.Fatalf("held Get: %v", err)
	}
	req1 := <-reqs

	// Late reply for the dead call, with a poison value. readLoop must find
	// no pending entry for req1.ID (the sweep removed it, and IDs are never
	// reused) and drop the frame on the floor.
	frame, err := wire.AppendResponse(nil, wire.Response{
		ID: req1.ID, Op: wire.OpGet, Status: wire.StatusOK, Val: []byte("POISON"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Write(frame); err != nil {
		t.Fatal(err)
	}

	// Call 2 very likely takes the pooled channel call 1 abandoned. It must
	// complete with its own response, not the poison one.
	go func() {
		req2 := <-reqs
		if req2.ID == req1.ID {
			t.Error("request ID reused across calls")
		}
		f, _ := wire.AppendResponse(nil, wire.Response{
			ID: req2.ID, Op: wire.OpGet, Status: wire.StatusOK, Val: []byte("fresh"),
		})
		sc.Write(f)
	}()
	v, err := c.Get([]byte("next"))
	if err != nil || string(v) != "fresh" {
		t.Fatalf("call after late response got %q, %v (want \"fresh\")", v, err)
	}
}

// TestCloseRaceNoHang races in-flight calls against Close. Before the
// post-registration closed re-check in do(), a call that registered its
// pending entry after Close's teardown sweep had no deliverer left —
// readLoop and sweepLoop were gone — and blocked on its channel forever.
func TestCloseRaceNoHang(t *testing.T) {
	for iter := 0; iter < 40; iter++ {
		fs := newFakeServer(t)
		c, err := Dial(fs.addr(), Options{Timeout: time.Second, ReconnectAttempts: 1})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				// Any outcome (success, ErrClosed, ErrConnLost) is fine;
				// the assertion is that every call RETURNS.
				_ = c.Ping()
			}()
		}
		close(start)
		c.Close()
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("call hung across Close (orphaned pending entry)")
		}
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	c := &Client{opts: Options{ReconnectBase: 4 * time.Millisecond, ReconnectMax: 16 * time.Millisecond}}
	c.backoff.Store(1)
	for attempt := 0; attempt < 6; attempt++ {
		d := c.opts.ReconnectBase << uint(attempt)
		if d > c.opts.ReconnectMax || d <= 0 {
			d = c.opts.ReconnectMax
		}
		start := time.Now()
		c.sleepBackoff(attempt)
		slept := time.Since(start)
		if slept < d/2-time.Millisecond {
			t.Fatalf("attempt %d slept %v, want >= %v", attempt, slept, d/2)
		}
		if slept > 4*d+50*time.Millisecond {
			t.Fatalf("attempt %d slept %v, want <= ~%v", attempt, slept, d)
		}
	}
}
