package rntree

import (
	"testing"
	"time"
)

func TestPublicAPICRUD(t *testing.T) {
	tr, err := New(Options{DualSlotArray: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 1000; i++ {
		if err := tr.Insert(i, i*3); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Insert(5, 1); err != ErrKeyExists {
		t.Fatalf("dup insert: %v", err)
	}
	if v, ok := tr.Find(500); !ok || v != 1500 {
		t.Fatalf("Find(500) = %d,%v", v, ok)
	}
	if err := tr.Update(500, 7); err != nil {
		t.Fatal(err)
	}
	if err := tr.Remove(501); err != nil {
		t.Fatal(err)
	}
	got := 0
	tr.Scan(0, 0, func(_, _ uint64) bool { got++; return true })
	if got != 999 {
		t.Fatalf("scan visited %d", got)
	}
	s := tr.Stats()
	if s.Persists == 0 || s.Leaves == 0 || s.HTM.Commits == 0 {
		t.Fatalf("stats look empty: %+v", s)
	}
}

func TestCrashRecoverPublic(t *testing.T) {
	tr, err := New(Options{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5000; i++ {
		if err := tr.Insert(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	snap := tr.Crash(0.3)
	tr2, err := Recover(snap, Options{DualSlotArray: true})
	if err != nil {
		t.Fatal(err)
	}
	if !tr2.DualSlot() {
		t.Fatal("recovered tree lost DualSlotArray option")
	}
	for i := uint64(0); i < 5000; i++ {
		if v, ok := tr2.Find(i); !ok || v != i+1 {
			t.Fatalf("recovered Find(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestCheckpointPublic(t *testing.T) {
	tr, err := New(Options{LeafCapacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 2000; i++ {
		if err := tr.Insert(i*2, i); err != nil {
			t.Fatal(err)
		}
	}
	snap := tr.Checkpoint()
	tr2, err := Recover(snap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := tr2.Find(1998); !ok || v != 999 {
		t.Fatalf("Find = %d,%v", v, ok)
	}
	// LeafCapacity must come from the snapshot.
	if err := tr2.Insert(1_000_001, 1); err != nil {
		t.Fatal(err)
	}
}

func TestBaselinesConstructible(t *testing.T) {
	for _, k := range []Kind{KindNVTree, KindNVTreeCond, KindWBTree, KindWBTreeSO, KindFPTree, KindCDDS} {
		ix, err := NewBaseline(k, Options{ArenaSize: 16 << 20})
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if err := ix.Insert(1, 2); err != nil {
			t.Fatalf("%s insert: %v", k, err)
		}
		if v, ok := ix.Find(1); !ok || v != 2 {
			t.Fatalf("%s find: %d,%v", k, v, ok)
		}
	}
	if _, err := NewBaseline("bogus", Options{}); err == nil {
		t.Fatal("bogus kind accepted")
	}
}

func TestPartitionedPublicAPI(t *testing.T) {
	tr, err := New(Options{DualSlotArray: true, Partitions: 8, ArenaSize: 64 << 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5000; i++ {
		if err := tr.Insert(i, i^7); err != nil {
			t.Fatal(err)
		}
	}
	if s := tr.Stats(); s.Partitions != 8 || s.Leaves == 0 || s.HTM.Commits == 0 {
		t.Fatalf("forest stats: %+v", s)
	}
	// Scans stay globally ordered across partitions.
	var prev uint64
	first := true
	n := tr.Scan(0, 0, func(k, _ uint64) bool {
		if !first && k <= prev {
			t.Fatalf("scan out of order: %d after %d", k, prev)
		}
		prev, first = k, false
		return true
	})
	if n != 5000 {
		t.Fatalf("scan visited %d", n)
	}
	// Crash + recover the whole forest; partition count comes from the
	// snapshot, options only restyle the reopened tree.
	snap := tr.Crash(0.4)
	tr2, err := Recover(snap, Options{DualSlotArray: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr2.Stats().Partitions; got != 8 {
		t.Fatalf("recovered partitions = %d", got)
	}
	for i := uint64(0); i < 5000; i++ {
		if v, ok := tr2.Find(i); !ok || v != i^7 {
			t.Fatalf("recovered Find(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestCrashSamplingDeterministicPerTree(t *testing.T) {
	build := func(seed int64) *Tree {
		// Dual slot mode keeps the transient slot arrays dirty (they are
		// never persisted), so eviction sampling has real lines to pick.
		tr, err := New(Options{DualSlotArray: true, Partitions: 2, ArenaSize: 16 << 20, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 2000; i++ {
			if err := tr.Insert(i, i); err != nil {
				t.Fatal(err)
			}
		}
		return tr
	}
	// Same seed + same history => identical eviction sampling, crash after
	// crash; a different seed diverges.
	a, b, c := build(7), build(7), build(8)
	differs := false
	for round := 0; round < 3; round++ {
		sa, sb, sc := a.Crash(0.5), b.Crash(0.5), c.Crash(0.5)
		for p := range sa.imgs {
			for w := range sa.imgs[p] {
				if sa.imgs[p][w] != sb.imgs[p][w] {
					t.Fatalf("round %d: same-seed trees diverged (partition %d word %d)", round, p, w)
				}
				if sa.imgs[p][w] != sc.imgs[p][w] {
					differs = true
				}
			}
		}
	}
	if !differs {
		t.Fatal("different seeds produced identical eviction sampling")
	}
}

func TestBulkLoadPartitioned(t *testing.T) {
	var recs []KV
	for i := uint64(0); i < 3000; i++ {
		recs = append(recs, KV{Key: i * 2, Value: i})
	}
	tr, err := BulkLoad(Options{Partitions: 4, ArenaSize: 32 << 20}, recs)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(recs) {
		t.Fatalf("Len = %d", tr.Len())
	}
	if v, ok := tr.Find(4000); !ok || v != 2000 {
		t.Fatalf("Find(4000) = %d,%v", v, ok)
	}
}

func TestLatencyOptionsApplied(t *testing.T) {
	tr, err := New(Options{FlushLatency: 200 * time.Microsecond, FenceLatency: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	if err := tr.Insert(1, 1); err != nil {
		t.Fatal(err)
	}
	// Two persistent instructions at >=300us each.
	if el := time.Since(t0); el < 500*time.Microsecond {
		t.Fatalf("latency model not applied: insert took %v", el)
	}
}
