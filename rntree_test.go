package rntree

import (
	"testing"
	"time"
)

func TestPublicAPICRUD(t *testing.T) {
	tr, err := New(Options{DualSlotArray: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 1000; i++ {
		if err := tr.Insert(i, i*3); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Insert(5, 1); err != ErrKeyExists {
		t.Fatalf("dup insert: %v", err)
	}
	if v, ok := tr.Find(500); !ok || v != 1500 {
		t.Fatalf("Find(500) = %d,%v", v, ok)
	}
	if err := tr.Update(500, 7); err != nil {
		t.Fatal(err)
	}
	if err := tr.Remove(501); err != nil {
		t.Fatal(err)
	}
	got := 0
	tr.Scan(0, 0, func(_, _ uint64) bool { got++; return true })
	if got != 999 {
		t.Fatalf("scan visited %d", got)
	}
	s := tr.Stats()
	if s.Persists == 0 || s.Leaves == 0 || s.HTM.Commits == 0 {
		t.Fatalf("stats look empty: %+v", s)
	}
}

func TestCrashRecoverPublic(t *testing.T) {
	tr, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5000; i++ {
		if err := tr.Insert(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	snap := tr.Crash(0.3, 99)
	tr2, err := Recover(snap, Options{DualSlotArray: true})
	if err != nil {
		t.Fatal(err)
	}
	if !tr2.DualSlot() {
		t.Fatal("recovered tree lost DualSlotArray option")
	}
	for i := uint64(0); i < 5000; i++ {
		if v, ok := tr2.Find(i); !ok || v != i+1 {
			t.Fatalf("recovered Find(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestCheckpointPublic(t *testing.T) {
	tr, err := New(Options{LeafCapacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 2000; i++ {
		if err := tr.Insert(i*2, i); err != nil {
			t.Fatal(err)
		}
	}
	snap := tr.Checkpoint()
	tr2, err := Recover(snap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := tr2.Find(1998); !ok || v != 999 {
		t.Fatalf("Find = %d,%v", v, ok)
	}
	// LeafCapacity must come from the snapshot.
	if err := tr2.Insert(1_000_001, 1); err != nil {
		t.Fatal(err)
	}
}

func TestBaselinesConstructible(t *testing.T) {
	for _, k := range []Kind{KindNVTree, KindNVTreeCond, KindWBTree, KindWBTreeSO, KindFPTree, KindCDDS} {
		ix, err := NewBaseline(k, Options{ArenaSize: 16 << 20})
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if err := ix.Insert(1, 2); err != nil {
			t.Fatalf("%s insert: %v", k, err)
		}
		if v, ok := ix.Find(1); !ok || v != 2 {
			t.Fatalf("%s find: %d,%v", k, v, ok)
		}
	}
	if _, err := NewBaseline("bogus", Options{}); err == nil {
		t.Fatal("bogus kind accepted")
	}
}

func TestLatencyOptionsApplied(t *testing.T) {
	tr, err := New(Options{FlushLatency: 200 * time.Microsecond, FenceLatency: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	if err := tr.Insert(1, 1); err != nil {
		t.Fatal(err)
	}
	// Two persistent instructions at >=300us each.
	if el := time.Since(t0); el < 500*time.Microsecond {
		t.Fatalf("latency model not applied: insert took %v", el)
	}
}
